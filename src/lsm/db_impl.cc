#include "src/lsm/db_impl.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <set>
#include <thread>
#include <unordered_map>

#include "src/lsm/merging_iterator.h"
#include "src/lsm/secondary_delete.h"
#include "src/lsm/sharded_db.h"

namespace lethe {

namespace {

/// Lazy concatenation over the files of one sorted run: at most one SSTable
/// iterator is open at a time.
class RunIterator final : public InternalIterator {
 public:
  RunIterator(TableCache* cache, std::vector<std::shared_ptr<FileMeta>> files,
              bool fill_cache)
      : cache_(cache), files_(std::move(files)), fill_cache_(fill_cache) {}

  bool Valid() const override {
    return status_.ok() && file_iter_ != nullptr && file_iter_->Valid();
  }

  void SeekToFirst() override {
    file_index_ = -1;
    file_iter_.reset();
    AdvanceFile(/*seek_target=*/nullptr);
  }

  void Seek(const Slice& target) override {
    // First file with largest_key >= target.
    int lo = 0, hi = static_cast<int>(files_.size()) - 1,
        result = static_cast<int>(files_.size());
    while (lo <= hi) {
      int mid = lo + (hi - lo) / 2;
      if (Slice(files_[mid]->largest_key).compare(target) >= 0) {
        result = mid;
        hi = mid - 1;
      } else {
        lo = mid + 1;
      }
    }
    file_index_ = result - 1;
    file_iter_.reset();
    AdvanceFile(&target);
  }

  void Next() override {
    file_iter_->Next();
    if (!file_iter_->Valid() && file_iter_->status().ok()) {
      AdvanceFile(nullptr);
    }
  }

  const ParsedEntry& entry() const override { return file_iter_->entry(); }

  Status status() const override {
    if (!status_.ok()) {
      return status_;
    }
    return file_iter_ != nullptr ? file_iter_->status() : Status::OK();
  }

 private:
  void AdvanceFile(const Slice* seek_target) {
    while (true) {
      file_index_++;
      if (file_index_ >= static_cast<int>(files_.size())) {
        file_iter_.reset();
        return;
      }
      std::shared_ptr<SSTableReader> table;
      Status s = cache_->GetTable(*files_[file_index_], &table);
      if (!s.ok()) {
        status_ = s;
        file_iter_.reset();
        return;
      }
      table_ = table;  // keep reader alive
      file_iter_ =
          table->NewIterator(files_[file_index_].get(), fill_cache_);
      if (seek_target != nullptr) {
        file_iter_->Seek(*seek_target);
        seek_target = nullptr;  // later files start from their beginning
      } else {
        file_iter_->SeekToFirst();
      }
      if (file_iter_->Valid() || !file_iter_->status().ok()) {
        return;
      }
      // Fully-dropped or tombstone-only file: move on.
    }
  }

  TableCache* cache_;
  std::vector<std::shared_ptr<FileMeta>> files_;
  bool fill_cache_;
  int file_index_ = -1;
  std::shared_ptr<SSTableReader> table_;
  std::unique_ptr<InternalIterator> file_iter_;
  Status status_;
};

/// User-facing iterator: filters superseded versions, tombstones, and
/// range-tombstone-covered entries out of the merged internal stream.
class DBIter final : public Iterator {
 public:
  /// `setup_status`, when not OK, poisons the iterator: the tombstone set
  /// could not be assembled completely (a table or its metadata failed to
  /// load), and iterating anyway could resurrect range-deleted keys.
  /// `bound` pins the scan to a point in time: entries (and range
  /// tombstones) with seq > bound are invisible, so writes committed after
  /// creation can never leak into an open scan.
  /// `fragmented` selects the cover-probe structure over the collected
  /// tombstones (Options::fragmented_range_tombstones): one fragmented
  /// index across every source — O(log F) per skipped entry — vs the naive
  /// sorted list. Both answer identically.
  DBIter(std::vector<std::shared_ptr<MemTable>> pinned_mems,
         std::shared_ptr<const Version> version,
         std::unique_ptr<InternalIterator> internal,
         const std::vector<RangeTombstone>& rts, bool fragmented,
         SequenceNumber bound, Statistics* stats, Status setup_status)
      : pinned_mems_(std::move(pinned_mems)),
        version_(std::move(version)),
        internal_(std::move(internal)),
        use_frag_(fragmented),
        bound_(bound),
        stats_(stats),
        setup_status_(std::move(setup_status)) {
    if (use_frag_) {
      frag_rts_ = FragmentedRangeTombstoneList(rts);
    } else {
      rts_.AddAll(rts);
    }
  }

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    if (!setup_status_.ok()) {
      return;
    }
    stats_->range_lookups.fetch_add(1, std::memory_order_relaxed);
    internal_->SeekToFirst();
    last_key_.clear();
    has_last_key_ = false;
    FindNextLiveEntry();
  }

  void Seek(const Slice& target) override {
    if (!setup_status_.ok()) {
      return;
    }
    stats_->range_lookups.fetch_add(1, std::memory_order_relaxed);
    internal_->Seek(target);
    last_key_.clear();
    has_last_key_ = false;
    FindNextLiveEntry();
  }

  void Next() override {
    internal_->Next();
    FindNextLiveEntry();
  }

  Slice key() const override { return Slice(key_); }
  Slice value() const override { return Slice(value_); }
  uint64_t delete_key() const override { return delete_key_; }
  Status status() const override {
    return setup_status_.ok() ? internal_->status() : setup_status_;
  }

 private:
  void FindNextLiveEntry() {
    valid_ = false;
    while (internal_->Valid()) {
      const ParsedEntry& entry = internal_->entry();
      if (entry.seq > bound_) {
        internal_->Next();  // committed after this scan's snapshot
        continue;
      }
      if (has_last_key_ && entry.user_key == Slice(last_key_)) {
        internal_->Next();  // older version of an already-decided key
        continue;
      }
      last_key_ = entry.user_key.ToString();
      has_last_key_ = true;
      if (entry.IsTombstone() || RtCovers(entry.user_key, entry.seq)) {
        internal_->Next();  // deleted key: skip all its versions
        continue;
      }
      key_ = last_key_;
      value_ = entry.value.ToString();
      delete_key_ = entry.delete_key;
      valid_ = true;
      return;
    }
  }

  bool RtCovers(const Slice& user_key, SequenceNumber seq) {
    if (!use_frag_) {
      return rts_.Covers(user_key, seq, bound_);
    }
    stats_->rt_cover_probes.fetch_add(1, std::memory_order_relaxed);
    return frag_rts_.Covers(user_key, seq, bound_);
  }

  std::vector<std::shared_ptr<MemTable>> pinned_mems_;  // pins mem + imms
  std::shared_ptr<const Version> version_;              // pins file set
  std::unique_ptr<InternalIterator> internal_;
  RangeTombstoneSet rts_;                  // !use_frag_ only
  FragmentedRangeTombstoneList frag_rts_;  // use_frag_ only
  bool use_frag_;
  SequenceNumber bound_;
  Statistics* stats_;
  Status setup_status_;

  bool valid_ = false;
  std::string last_key_;
  bool has_last_key_ = false;
  std::string key_;
  std::string value_;
  uint64_t delete_key_ = 0;
};

uint64_t NowSteadyMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Parses "NNNNNN<suffix>" (as produced by WalFileName / TableFileName)
/// into its number. `suffix` includes the dot, e.g. ".wal".
bool ParseNumberedFileName(const std::string& name, const char* suffix,
                           uint64_t* number) {
  const size_t suffix_len = strlen(suffix);
  if (name.size() <= suffix_len ||
      name.compare(name.size() - suffix_len, suffix_len, suffix) != 0) {
    return false;
  }
  const size_t digits = name.size() - suffix_len;
  uint64_t n = 0;
  for (size_t i = 0; i < digits; i++) {
    if (name[i] < '0' || name[i] > '9') {
      return false;
    }
    n = n * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *number = n;
  return true;
}

bool ParseWalFileName(const std::string& name, uint64_t* number) {
  return ParseNumberedFileName(name, ".wal", number);
}

/// Best-effort removal of a failed merge's finished outputs — the edit was
/// never installed, so nothing references them. Partially written outputs
/// (not yet in the edit) are reaped by recovery's orphan sweep instead.
void RemoveFailedMergeOutputs(Env* env, const std::string& dbname,
                              const VersionEdit& edit) {
  for (const auto& [level, meta] : edit.added_files) {
    env->RemoveFile(TableFileName(dbname, meta.file_number)).ok();
  }
}

}  // namespace

Status DB::Open(const Options& options, const std::string& name,
                std::unique_ptr<DB>* db) {
  LETHE_RETURN_IF_ERROR(options.Validate());
  if (options.num_shards > 1) {
    return OpenShardedDB(options, name, db);
  }
  auto impl = std::make_unique<DBImpl>(options, name);
  LETHE_RETURN_IF_ERROR(impl->Init());
  *db = std::move(impl);
  return Status::OK();
}

DBImpl::DBImpl(const Options& options, std::string name)
    : options_(options.WithDefaults()), dbname_(std::move(name)) {}

DBImpl::~DBImpl() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;  // rejects new writes and new background enqueues
    // Wake exclusive jobs parked on the in-flight registry so they observe
    // closed_ and exit instead of waiting out a shutdown that is waiting
    // for them.
    bg_work_done_cv_.notify_all();
  }
  if (err_ != nullptr) {
    // Join the recovery thread before the scheduler: its resume callback may
    // be blocked on mu_ (not held here), and it must not probe an env the
    // owner is about to tear down.
    err_->Shutdown();
  }
  if (bg_ != nullptr) {
    // Leave the pool as an owner: discard this DB's queued jobs and wait
    // out its in-flight ones. In a shared pool (ShardedDB) sibling shards'
    // jobs keep running untouched; when this DBImpl owns the scheduler
    // alone, shut the pool down afterwards exactly as before.
    bg_->DetachOwner(bg_owner_);
    if (options_.shared_scheduler == nullptr) {
      bg_->Shutdown();
    }
  }
  {
    // Single-threaded from here on. Drain the memtables whose flush jobs
    // were discarded: their content is also in the per-memtable WALs, but
    // draining keeps close lossless when the WAL is disabled. Best effort —
    // on failure the WALs stay behind for recovery to replay.
    std::unique_lock<std::mutex> l(mu_);
    while (!imm_.empty() && bg_error_.ok()) {
      if (!FlushOldestImmLocked(l).ok()) {
        break;
      }
    }
  }
  if (wal_ != nullptr) {
    wal_->Close().ok();
  }
  if (versions_ != nullptr) {
    // No readers remain: reap every table file still parked awaiting
    // snapshot release.
    versions_->SweepAllObsoleteFiles();
  }
}

Status DBImpl::Init() {
  // One budget number: memory_budget_bytes sizes the block cache and, via
  // the reservation below, also accounts the write buffers against it;
  // page_cache_bytes alone is the legacy data-page-only configuration.
  const uint64_t cache_capacity = options_.memory_budget_bytes > 0
                                      ? options_.memory_budget_bytes
                                      : options_.page_cache_bytes;
  if (options_.shared_block_cache != nullptr) {
    // ShardedDB: every shard stakes reservations against the one facade-
    // owned cache, so a single budget bounds the whole sharded engine.
    page_cache_ = options_.shared_block_cache;
    if (options_.memory_budget_bytes > 0) {
      memtable_reservation_ = CacheReservation(page_cache_->cache());
    }
  } else if (cache_capacity > 0) {
    page_cache_ = std::make_shared<PageCache>(
        cache_capacity, options_.page_cache_shard_bits, &stats_,
        options_.strict_cache_capacity);
    if (options_.memory_budget_bytes > 0) {
      memtable_reservation_ = CacheReservation(page_cache_->cache());
    }
  }
  versions_ = std::make_unique<VersionSet>(options_, dbname_,
                                           page_cache_.get(), &stats_);
  picker_ = std::make_unique<CompactionPicker>(options_, versions_.get());
  LETHE_RETURN_IF_ERROR(versions_->Recover());
  mem_ = std::make_shared<MemTable>();
  if (!options_.inline_compactions) {
    if (options_.shared_scheduler != nullptr) {
      bg_ = options_.shared_scheduler;
      bg_owner_ = bg_->RegisterOwner();
    } else {
      bg_ = std::make_shared<BackgroundScheduler>(options_.background_threads,
                                                  &stats_);
    }
    ErrorHandler::RetryPolicy policy;
    policy.max_retries = options_.max_bg_error_retries;
    policy.base_backoff_micros = options_.bg_error_base_backoff_micros;
    policy.max_backoff_micros = options_.bg_error_max_backoff_micros;
    policy.auto_recovery = options_.auto_recovery;
    // Backoff is wall-clock even when options_.clock is logical: recovery
    // waits for the outside world (disk, space), not for DB-internal time.
    err_ = std::make_unique<ErrorHandler>(
        policy, SystemClock::Default(), &stats_,
        /*probe=*/[this] { return ProbeStorage(); },
        /*resume=*/[this] { ResumeFromBackgroundError(); },
        /*notify=*/[this] {
          std::lock_guard<std::mutex> lock(mu_);
          bg_work_done_cv_.notify_all();
        });
  }

  std::lock_guard<std::mutex> lock(mu_);
  LETHE_RETURN_IF_ERROR(RemoveOrphanFilesLocked());
  if (options_.enable_wal) {
    LETHE_RETURN_IF_ERROR(ReplayWalsLocked());
  }
  // Replay refills the memtable without passing the write path; stake its
  // bytes against the budget before the first user write (single-threaded
  // here, so sizing mem_ directly is safe).
  mem_staked_bytes_ = mem_->ApproximateMemoryUsage();
  UpdateMemtableReservationLocked();
  RefreshTriggerStateLocked();
  return Status::OK();
}

Status DBImpl::RemoveOrphanFilesLocked() {
  // A crash between a merge's output writes and its manifest install leaves
  // table files no version references; a crash after recovery leaves the
  // previous MANIFEST behind. Neither is reachable (the manifest is the
  // source of truth), so both are garbage — but their numbers may exceed
  // the persisted file-number counter, so the counter must move past them
  // before this DB allocates fresh names.
  std::vector<std::string> children;
  if (!options_.env->GetChildren(dbname_, &children).ok()) {
    return Status::OK();  // list-less env: nothing to sweep
  }
  std::set<uint64_t> live;
  for (const auto& [level, file] : versions_->current()->AllFiles()) {
    live.insert(file->file_number);
  }
  // Empty at Init; populated when the resume path re-runs this sweep on a
  // live DB, where retired-but-pinned files are not garbage.
  for (uint64_t number : versions_->GraveyardFiles()) {
    live.insert(number);
  }
  // After a manifest fallback the recovered snapshot is older than the tree
  // on disk: "unreferenced" tables may hold acknowledged data the damaged
  // manifest referenced. The Init-time sweep quarantines them (DB::Repair
  // can readopt a .bad file once renamed back) instead of deleting; later
  // resume sweeps only ever see genuinely aborted outputs.
  const bool quarantine =
      versions_->recovered_via_fallback() && !fallback_sweep_done_;
  fallback_sweep_done_ = true;
  for (const std::string& child : children) {
    uint64_t number = 0;
    if (ParseNumberedFileName(child, ".sst", &number)) {
      versions_->EnsureFileNumberPast(number);
      if (live.count(number) == 0) {
        const std::string fname = TableFileName(dbname_, number);
        if (quarantine) {
          options_.env->RenameFile(fname, fname + ".bad").ok();
        } else {
          options_.env->RemoveFile(fname).ok();
        }
      }
    } else if (child.rfind("MANIFEST-", 0) == 0) {
      uint64_t manifest = 0;
      if (sscanf(child.c_str(), "MANIFEST-%" SCNu64, &manifest) == 1) {
        versions_->EnsureFileNumberPast(manifest);
        if (manifest != versions_->manifest_number()) {
          options_.env->RemoveFile(dbname_ + "/" + child).ok();
        }
      }
    }
  }
  return Status::OK();
}

Status DBImpl::ReplayWalsLocked() {
  // The manifest names the oldest WAL still needed; in background mode a
  // crash can leave several live WALs behind (one per unflushed memtable
  // plus the active one), so recovery scans the directory and replays every
  // log with number >= the manifest's, in number (= age) order.
  const uint64_t min_wal = versions_->wal_number();
  std::vector<uint64_t> to_replay;
  std::vector<uint64_t> obsolete;
  std::vector<std::string> children;
  if (options_.env->GetChildren(dbname_, &children).ok()) {
    for (const std::string& child : children) {
      uint64_t number = 0;
      if (!ParseWalFileName(child, &number)) {
        continue;
      }
      if (min_wal != 0 && number >= min_wal) {
        to_replay.push_back(number);
      } else {
        obsolete.push_back(number);
      }
    }
  } else if (min_wal != 0 &&
             options_.env->FileExists(WalFileName(dbname_, min_wal))) {
    to_replay.push_back(min_wal);  // fallback for list-less envs
  }
  std::sort(to_replay.begin(), to_replay.end());
  // Crash-surviving WAL numbers may exceed the manifest's file-number
  // counter (background-mode swaps allocate them without a manifest write).
  // Bump the counter so the fresh WAL/table numbers below cannot collide
  // with a file this loop is about to replay and delete.
  for (uint64_t number : to_replay) {
    versions_->EnsureFileNumberPast(number);
  }
  for (uint64_t number : obsolete) {
    versions_->EnsureFileNumberPast(number);
  }

  // Scan each log under the configured recovery mode. A torn tail (an
  // append cut short by the crash) is distinct from corruption (a CRC or
  // decode failure with intact framing after it): the default mode forgives
  // the former in the newest log only, kSkipCorruptRecords resyncs past any
  // damage, and kAbsoluteConsistency forgives nothing.
  const WalRecoveryMode mode = options_.wal_recovery_mode;
  std::vector<WalRecord> replayed;
  for (size_t wal_idx = 0; wal_idx < to_replay.size(); wal_idx++) {
    const uint64_t number = to_replay[wal_idx];
    const bool newest = wal_idx + 1 == to_replay.size();
    const std::string fname = WalFileName(dbname_, number);
    std::string contents;
    LETHE_RETURN_IF_ERROR(ReadFileToString(options_.env, fname, &contents));
    RecordLogScanner scanner{Slice(contents)};
    bool done = false;
    while (!done) {
      Slice payload;
      switch (scanner.Next(&payload)) {
        case RecordLogScanner::Result::kRecord: {
          WalRecord record;
          if (DecodeWalRecord(payload, &record)) {
            replayed.push_back(std::move(record));
          } else if (mode == WalRecoveryMode::kSkipCorruptRecords) {
            // Frame CRC passed but the payload does not decode — count it
            // as a corrupt record and move on.
            stats_.wal_records_skipped_corrupt.fetch_add(
                1, std::memory_order_relaxed);
            stats_.wal_bytes_skipped_corrupt.fetch_add(
                payload.size(), std::memory_order_relaxed);
          } else {
            return Status::Corruption("WAL record malformed in " + fname);
          }
          break;
        }
        case RecordLogScanner::Result::kEnd:
          done = true;
          break;
        case RecordLogScanner::Result::kTornTail:
          if (mode != WalRecoveryMode::kAbsoluteConsistency && newest) {
            // The crash interrupted the final append; everything acked
            // before it is already replayed.
            done = true;
            break;
          }
          if (mode == WalRecoveryMode::kSkipCorruptRecords) {
            const uint64_t skipped = scanner.Resync();
            if (skipped == 0) {
              done = true;  // damage runs to EOF
              break;
            }
            stats_.wal_records_skipped_corrupt.fetch_add(
                1, std::memory_order_relaxed);
            stats_.wal_bytes_skipped_corrupt.fetch_add(
                skipped, std::memory_order_relaxed);
            break;
          }
          return Status::Corruption(
              "WAL truncated before its end (torn tail in a non-final log "
              "or kAbsoluteConsistency): " +
              fname);
        case RecordLogScanner::Result::kCorrupt:
          if (mode == WalRecoveryMode::kSkipCorruptRecords) {
            const uint64_t skipped = scanner.Resync();
            if (skipped == 0) {
              done = true;
              break;
            }
            stats_.wal_records_skipped_corrupt.fetch_add(
                1, std::memory_order_relaxed);
            stats_.wal_bytes_skipped_corrupt.fetch_add(
                skipped, std::memory_order_relaxed);
            break;
          }
          return Status::Corruption("WAL record checksum mismatch in " +
                                    fname);
      }
    }
  }

  // Re-apply into the fresh memtable, tracking checkpoint info.
  for (const WalRecord& record : replayed) {
    if (record.kind == WalRecord::Kind::kSecondaryRangeDelete) {
      // Re-apply the in-place purge at its original position in the
      // timeline: it covers exactly the entries replayed before it.
      mem_->PurgeDeleteKeyRange(record.delete_key, record.delete_key_end);
      if (record.seq > versions_->LastSequence()) {
        versions_->SetLastSequence(record.seq);
      }
      continue;
    }
    if (mem_->empty()) {
      mem_first_seq_ = record.seq;
      mem_first_time_ = record.time;
    }
    switch (record.kind) {
      case WalRecord::Kind::kPut:
        mem_->Add(record.seq, ValueType::kValue, record.key,
                  record.delete_key, record.value, record.time);
        break;
      case WalRecord::Kind::kDelete:
        mem_->Add(record.seq, ValueType::kTombstone, record.key,
                  record.delete_key, Slice(), record.time);
        break;
      case WalRecord::Kind::kRangeDelete: {
        RangeTombstone rt;
        rt.begin_key = record.key;
        rt.end_key = record.end_key;
        rt.seq = record.seq;
        rt.time = record.time;
        mem_->AddRangeTombstone(rt);
        break;
      }
      case WalRecord::Kind::kSecondaryRangeDelete:
        break;  // handled above
    }
    if (record.seq > versions_->LastSequence()) {
      versions_->SetLastSequence(record.seq);
    }
  }

  // Start a fresh log containing the replayed records, then retire the old
  // ones, so a second crash before the next flush still recovers everything.
  VersionEdit edit;
  LETHE_RETURN_IF_ERROR(RotateWalLocked(&edit));
  for (const WalRecord& record : replayed) {
    LETHE_RETURN_IF_ERROR(wal_->AddRecord(record));
  }
  LETHE_RETURN_IF_ERROR(versions_->LogAndApply(&edit));
  for (uint64_t number : to_replay) {
    options_.env->RemoveFile(WalFileName(dbname_, number)).ok();
  }
  for (uint64_t number : obsolete) {
    options_.env->RemoveFile(WalFileName(dbname_, number)).ok();
  }
  return Status::OK();
}

Status DBImpl::RotateWalLocked(VersionEdit* edit) {
  if (!options_.enable_wal) {
    return Status::OK();
  }
  uint64_t number = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> file;
  LETHE_RETURN_IF_ERROR(
      options_.env->NewWritableFile(WalFileName(dbname_, number), &file));
  if (wal_ != nullptr) {
    wal_->Close().ok();
  }
  wal_ = std::make_unique<WalWriter>(std::move(file), options_.sync_wal);
  wal_number_ = number;
  edit->wal_number = number;
  return Status::OK();
}

DBImpl::ReadSnapshot DBImpl::GetReadSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return GetReadSnapshotLocked();
}

DBImpl::ReadSnapshot DBImpl::GetReadSnapshotLocked() const {
  ReadSnapshot snap;
  snap.mem = mem_;
  snap.imm.reserve(imm_.size());
  for (const ImmMemTable& imm : imm_) {
    snap.imm.push_back(imm.mem);
  }
  snap.version = versions_->current();
  return snap;
}

bool DBImpl::KeyMayExist(const ReadSnapshot& snap, const Slice& key) {
  ParsedEntry entry;
  if (snap.mem->Get(key, &entry)) {
    // A live value means a tombstone is useful; an existing tombstone means
    // the new delete would be blind.
    return !entry.IsTombstone();
  }
  for (auto it = snap.imm.rbegin(); it != snap.imm.rend(); ++it) {
    if ((*it)->Get(key, &entry)) {
      return !entry.IsTombstone();
    }
  }
  for (int level = 0; level < snap.version->num_levels(); level++) {
    const auto& runs = snap.version->levels()[level];
    for (auto run = runs.rbegin(); run != runs.rend(); ++run) {
      int idx = run->FindFile(key);
      if (idx < 0) {
        continue;
      }
      for (size_t i = idx; i < run->files.size() &&
                           Slice(run->files[i]->smallest_key).compare(key) <= 0;
           i++) {
        std::shared_ptr<SSTableReader> table;
        if (!versions_->table_cache()->GetTable(*run->files[i], &table).ok()) {
          return true;  // be conservative on errors
        }
        if (table->KeyMayExist(key, run->files[i].get(), &stats_)) {
          return true;
        }
      }
    }
  }
  return false;
}

// ---- write path -----------------------------------------------------------

Status DBImpl::Put(const WriteOptions& options, const Slice& key,
                   uint64_t delete_key, const Slice& value) {
  WriteBatch batch;
  batch.Put(key, delete_key, value);
  return Write(options, &batch);
}

Status DBImpl::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, &batch);
}

Status DBImpl::RangeDelete(const WriteOptions& options, const Slice& begin_key,
                           const Slice& end_key) {
  WriteBatch batch;
  batch.RangeDelete(begin_key, end_key);
  return Write(options, &batch);
}

void DBImpl::JoinWriterQueue(Writer* w, std::unique_lock<std::mutex>& l) {
  writers_.push_back(w);
  while (!w->done && w != writers_.front()) {
    w->cv.wait(l);
  }
}

void DBImpl::CompleteGroup(Writer* self, Writer* last, const Status& s,
                           std::unique_lock<std::mutex>&) {
  while (!writers_.empty()) {
    Writer* ready = writers_.front();
    writers_.pop_front();
    if (ready != self) {
      ready->status = s;
      ready->done = true;
      ready->cv.notify_one();
    }
    if (ready == last) {
      break;
    }
  }
  if (!writers_.empty()) {
    writers_.front()->cv.notify_one();
  }
}

std::vector<DBImpl::Writer*> DBImpl::BuildBatchGroup(Writer** last) {
  // Bound the group so one giant batch does not add unbounded latency to a
  // small writer that merged behind it.
  static constexpr size_t kMaxGroupBytes = 1 << 20;
  std::vector<Writer*> group;
  size_t bytes = 0;
  for (Writer* writer : writers_) {
    if (writer->batch == nullptr) {
      break;  // exclusive op (flush/SRD): never merged into a group
    }
    if (writer->validate) {
      break;  // txn commit: must run its own validation before applying
    }
    if (!group.empty() && writer->sync && !group.front()->sync) {
      break;  // do not impose a sync on writers that did not ask for one
    }
    bytes += writer->batch->ApproximateBytes();
    if (!group.empty() && bytes > kMaxGroupBytes) {
      break;
    }
    group.push_back(writer);
  }
  *last = group.back();
  return group;
}

Status DBImpl::ApplyGroup(const std::vector<Writer*>& group,
                          const ReadSnapshot& snap, WalWriter* wal,
                          uint64_t now, bool force_sync) {
  // Runs with mu_ released; the caller holds the write token, which is what
  // guards memtable content, WAL appends, and sequence allocation.
  struct PendingOp {
    const WriteBatch::Op* op;
    SequenceNumber seq;
    uint64_t delete_key;
  };
  std::vector<PendingOp> pending;
  std::vector<WalRecord> records;
  size_t total_ops = 0;
  for (const Writer* writer : group) {
    total_ops += writer->batch->Count();
  }
  pending.reserve(total_ops);
  if (wal != nullptr) {
    records.reserve(total_ops);
  }

  // Pass 1: blind-delete filtering, statistics, sequence assignment, WAL
  // record construction. `group_live` tracks the liveness outcome of keys
  // written earlier in this group, so a Delete after a Put of the same key
  // is judged against the batch, not the stale snapshot. It is only
  // maintained when the filter is on — the default write path stays free of
  // per-op map inserts.
  const bool track_liveness = options_.filter_blind_deletes;
  std::unordered_map<std::string, bool> group_live;
  // Sequences are allocated locally and published only once the WAL accepts
  // the group: a failed append must not advance the visible sequence, or the
  // numbers it burned would be acked to no one yet replayable by nobody.
  // Token-guarded (only the token holder allocates), so the read-modify-
  // write of LastSequence is unsynchronized but safe.
  SequenceNumber next_seq = versions_->LastSequence();
  for (const Writer* writer : group) {
    for (const WriteBatch::Op& op : writer->batch->ops()) {
      uint64_t delete_key = op.delete_key;
      switch (op.kind) {
        case WriteBatch::OpKind::kPut:
          stats_.user_puts.fetch_add(1, std::memory_order_relaxed);
          stats_.user_bytes_written.fetch_add(
              op.key.size() + op.value.size() + 8, std::memory_order_relaxed);
          if (track_liveness) {
            group_live[op.key] = true;
          }
          break;
        case WriteBatch::OpKind::kDelete: {
          if (options_.filter_blind_deletes) {
            auto it = group_live.find(op.key);
            const bool may_exist =
                it != group_live.end() ? it->second
                                       : KeyMayExist(snap, Slice(op.key));
            if (!may_exist) {
              stats_.blind_deletes_avoided.fetch_add(
                  1, std::memory_order_relaxed);
              continue;  // skip: no sequence, no WAL record, no tombstone
            }
          }
          stats_.user_deletes.fetch_add(1, std::memory_order_relaxed);
          stats_.user_bytes_written.fetch_add(op.key.size() + 8,
                                              std::memory_order_relaxed);
          // The tombstone's delete key is its creation time, so
          // timestamp-keyed secondary deletes age tombstones out with the
          // data they invalidate.
          delete_key = now;
          if (track_liveness) {
            group_live[op.key] = false;
          }
          break;
        }
        case WriteBatch::OpKind::kRangeDelete:
          stats_.user_range_deletes.fetch_add(1, std::memory_order_relaxed);
          stats_.user_bytes_written.fetch_add(
              op.key.size() + op.end_key.size(), std::memory_order_relaxed);
          break;
      }
      // Only the token holder allocates sequences, so filtered deletes
      // consume none — identical to the inline engine's numbering.
      const SequenceNumber seq = ++next_seq;
      if (pending.empty() && snap.mem->empty()) {
        mem_first_seq_ = seq;  // token-guarded, like all memtable state
        mem_first_time_ = now;
      }
      pending.push_back({&op, seq, delete_key});
      if (wal != nullptr) {
        WalRecord record;
        record.kind = op.kind == WriteBatch::OpKind::kPut
                          ? WalRecord::Kind::kPut
                          : (op.kind == WriteBatch::OpKind::kDelete
                                 ? WalRecord::Kind::kDelete
                                 : WalRecord::Kind::kRangeDelete);
        record.seq = seq;
        record.time = now;
        record.key = op.key;
        record.end_key = op.end_key;
        record.delete_key = delete_key;
        record.value = op.value;
        records.push_back(std::move(record));
      }
    }
  }
  if (pending.empty()) {
    return Status::OK();
  }

  // Pass 2: one physical WAL append (and at most one sync) for the whole
  // group — the group-commit amortization.
  if (wal != nullptr) {
    bool appended = false;
    Status ws =
        wal->AddRecords(records.data(), records.size(), force_sync, &appended);
    if (appended) {
      stats_.wal_appends.fetch_add(1, std::memory_order_relaxed);
    }
    if (!ws.ok()) {
      // Every writer in the group fails with this status (CompleteGroup
      // propagates it to all members). If bytes may have reached the log
      // (append succeeded, sync failed) the sequences must be burned —
      // published so recovery's replay of those bytes cannot collide with a
      // later ack — but they become visible to no read until then. A pure
      // append failure left nothing on disk, so the numbers are reused.
      if (appended) {
        versions_->SetLastSequence(next_seq);
      }
      return ws;
    }
    if (force_sync || options_.sync_wal) {
      stats_.wal_syncs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Pass 3: apply to the memtable in order.
  for (const PendingOp& p : pending) {
    const WriteBatch::Op& op = *p.op;
    switch (op.kind) {
      case WriteBatch::OpKind::kPut:
        snap.mem->Add(p.seq, ValueType::kValue, op.key, p.delete_key,
                      op.value, now);
        break;
      case WriteBatch::OpKind::kDelete:
        snap.mem->Add(p.seq, ValueType::kTombstone, op.key, p.delete_key,
                      Slice(), now);
        break;
      case WriteBatch::OpKind::kRangeDelete: {
        RangeTombstone rt;
        rt.begin_key = op.key;
        rt.end_key = op.end_key;
        rt.seq = p.seq;
        rt.time = now;
        snap.mem->AddRangeTombstone(rt);
        break;
      }
    }
  }
  // Publish the group's sequences only after every memtable insert: a
  // snapshot pinned at LastSequence must observe each batch atomically
  // (all of its entries or none), never a half-applied group.
  versions_->SetLastSequence(next_seq);
  stats_.group_commit_batches.fetch_add(1, std::memory_order_relaxed);
  stats_.group_commit_entries.fetch_add(pending.size(),
                                        std::memory_order_relaxed);
  return Status::OK();
}

Status DBImpl::Write(const WriteOptions& options, WriteBatch* batch) {
  if (batch == nullptr) {
    return Status::InvalidArgument("null WriteBatch");
  }
  for (const WriteBatch::Op& op : batch->ops()) {
    if (op.kind == WriteBatch::OpKind::kRangeDelete &&
        Slice(op.key).compare(Slice(op.end_key)) >= 0) {
      return Status::InvalidArgument("empty range delete");
    }
  }

  Writer w(batch, options.sync);
  std::unique_lock<std::mutex> l(mu_);
  if (closed_) {
    return Status::InvalidArgument("DB is closed");
  }
  JoinWriterQueue(&w, l);
  if (w.done) {
    return w.status;  // a leader committed this batch on our behalf
  }

  // This writer holds the write token.
  Status s = WaitForWritableLocked(l);
  Writer* last_writer = &w;
  if (s.ok()) {
    MaybeSlowdownLocked(l);
    std::vector<Writer*> group = BuildBatchGroup(&last_writer);
    size_t count = 0;
    for (const Writer* writer : group) {
      count += writer->batch->Count();
    }
    if (count > 0) {
      const uint64_t now = options_.clock->NowMicros();
      ReadSnapshot snap = GetReadSnapshotLocked();
      WalWriter* wal = wal_.get();
      bool force_sync = false;
      for (const Writer* writer : group) {
        force_sync |= writer->sync;
      }
      l.unlock();
      s = ApplyGroup(group, snap, wal, now, force_sync);
      l.lock();
      if (!s.ok() && err_ != nullptr) {
        // The group's WAL append/sync failed: feed the state machine so
        // recovery probes the storage and, on success, resumes writes.
        RecordBackgroundErrorLocked(BackgroundJobKind::kWalWrite, s);
      }
    }
    if (s.ok()) {
      Status post = HandlePostWriteLocked(l);
      if (!post.ok()) {
        if (err_ != nullptr) {
          // The group is already durable and applied — failing the acked
          // batch over post-write maintenance (a memtable switch that could
          // not start, or health falling to read-only mid-write) would
          // misreport applied data as lost. Feed genuine failures to the
          // state machine; the next write rejects at entry instead.
          if (bg_error_.ok() && !post.IsInvalidArgument()) {
            RecordBackgroundErrorLocked(BackgroundJobKind::kWalWrite, post);
          }
        } else {
          s = post;  // inline mode: errors pin the DB as before
        }
      }
    }
  }
  CompleteGroup(&w, last_writer, s, l);
  return s;
}

Status DBImpl::WriteValidated(const WriteOptions& options, WriteBatch* batch,
                              SequenceNumber read_snapshot_seq,
                              const std::vector<std::string>& validation_keys,
                              SequenceNumber* commit_seq) {
  if (batch == nullptr) {
    return Status::InvalidArgument("null WriteBatch");
  }
  for (const WriteBatch::Op& op : batch->ops()) {
    if (op.kind == WriteBatch::OpKind::kRangeDelete) {
      // Validation is per-key; a staged range delete would need range
      // conflict tracking. OptimisticTransaction never stages one.
      return Status::NotSupported("range deletes in validated writes");
    }
  }

  Writer w(batch, options.sync);
  w.validate = true;
  std::unique_lock<std::mutex> l(mu_);
  if (closed_) {
    return Status::InvalidArgument("DB is closed");
  }
  JoinWriterQueue(&w, l);
  // Validating writers are never absorbed into a leader's group
  // (BuildBatchGroup stops at them), so reaching here means holding the
  // token: no other commit can land between validation and apply.

  Status s = WaitForWritableLocked(l);
  if (s.ok()) {
    MaybeSlowdownLocked(l);
    l.unlock();
    // Reads take mu_ briefly themselves; run the lookups without it.
    for (const std::string& key : validation_keys) {
      SequenceNumber latest = 0;
      s = LatestSeqForKey(Slice(key), &latest);
      if (!s.ok()) {
        break;
      }
      if (latest > read_snapshot_seq) {
        s = Status::Busy("transaction conflict: key written since snapshot");
        break;
      }
    }
    if (s.ok()) {
      stats_.txn_commits.fetch_add(1, std::memory_order_relaxed);
    } else if (s.IsBusy()) {
      stats_.txn_conflicts.fetch_add(1, std::memory_order_relaxed);
    }
    l.lock();
  }
  if (s.ok() && batch->Count() == 0 && commit_seq != nullptr) {
    // Read-only transaction: its serialization point is now (validated
    // under the token with nothing to apply).
    *commit_seq = versions_->LastSequence();
  }
  if (s.ok() && batch->Count() > 0) {
    const std::vector<Writer*> group{&w};
    const uint64_t now = options_.clock->NowMicros();
    ReadSnapshot snap = GetReadSnapshotLocked();
    WalWriter* wal = wal_.get();
    l.unlock();
    s = ApplyGroup(group, snap, wal, now, w.sync);
    l.lock();
    if (s.ok() && commit_seq != nullptr) {
      // Solo group: the batch owns the tail of the sequence space, and the
      // token serializes commits, so this is the group's last sequence.
      *commit_seq = versions_->LastSequence();
    }
    if (!s.ok() && err_ != nullptr) {
      RecordBackgroundErrorLocked(BackgroundJobKind::kWalWrite, s);
    }
    if (s.ok()) {
      Status post = HandlePostWriteLocked(l);
      if (!post.ok()) {
        if (err_ != nullptr) {
          if (bg_error_.ok() && !post.IsInvalidArgument()) {
            RecordBackgroundErrorLocked(BackgroundJobKind::kWalWrite, post);
          }
        } else {
          s = post;
        }
      }
    }
  }
  CompleteGroup(&w, &w, s, l);
  return s;
}

Status DBImpl::WaitForWritableLocked(std::unique_lock<std::mutex>&) {
  if (bg_error_.ok()) {
    return Status::OK();
  }
  if (err_ == nullptr) {
    return bg_error_;  // inline mode: errors pin the DB as before
  }
  // Degraded does not gate the write path: the WAL and the memtable are not
  // the failing component (a WAL failure fails its own write group), so
  // writes keep landing while recovery retries the background job. Waiting
  // here would also be unfair — the resume's retry re-fails and re-sets
  // bg_error_ faster than a parked writer can win the mutex, starving it.
  // The bounded stall lives at the imm-cap/L0 gate in HandlePostWriteLocked;
  // only read-only and fatal reject.
  const DBHealth health = err_->health();
  if (health == DBHealth::kDegraded || health == DBHealth::kHealthy) {
    return Status::OK();
  }
  return Status::IOError("DB is read-only after background error: " +
                         err_->cause().ToString());
}

int DBImpl::EffectiveL0StopTrigger() const {
  if (options_.l0_stop_trigger > 0 &&
      options_.compaction_style == CompactionStyle::kTiering) {
    return std::max(options_.l0_stop_trigger,
                    static_cast<int>(options_.size_ratio));
  }
  return options_.l0_stop_trigger;
}

void DBImpl::MaybeSlowdownLocked(std::unique_lock<std::mutex>& l) {
  if (options_.inline_compactions || options_.l0_slowdown_trigger <= 0 ||
      options_.slowdown_delay_micros == 0) {
    return;
  }
  const int stop = EffectiveL0StopTrigger();
  if (l0_runs_ < options_.l0_slowdown_trigger ||
      (stop > 0 && l0_runs_ >= stop)) {
    return;  // below the soft trigger, or at the hard one (stall instead)
  }
  l.unlock();
  std::this_thread::sleep_for(
      std::chrono::microseconds(options_.slowdown_delay_micros));
  l.lock();
  stats_.write_slowdowns.fetch_add(1, std::memory_order_relaxed);
}

Status DBImpl::HandlePostWriteLocked(std::unique_lock<std::mutex>& l) {
  // Sizing mem_ requires the write token (held here); the measured value
  // is cached so token-less paths (background flush commit) can re-stake
  // without touching the arena. The stake is quantized *up* to 4 KB: the
  // budget bound stays conservative, and the common write's cost here is
  // one comparison instead of a walk over every cache shard.
  if (memtable_reservation_.active()) {
    constexpr size_t kStakeQuantum = 4096;
    const size_t staked =
        (mem_->ApproximateMemoryUsage() + kStakeQuantum - 1) /
        kStakeQuantum * kStakeQuantum;
    if (staked != mem_staked_bytes_) {
      mem_staked_bytes_ = staked;
      UpdateMemtableReservationLocked();
    }
  }
  const uint64_t now = options_.clock->NowMicros();
  auto buffer_needs_flush = [&] {
    const bool buffer_full =
        mem_->ApproximateMemoryUsage() >= options_.write_buffer_bytes;
    const bool buffer_ttl_expired =
        buffer_ttl_ != UINT64_MAX &&
        mem_->oldest_tombstone_time() != kNoTombstoneTime &&
        now - mem_->oldest_tombstone_time() > buffer_ttl_;
    return buffer_full || buffer_ttl_expired;
  };

  if (options_.inline_compactions) {
    if (buffer_needs_flush()) {
      ImmMemTable current{mem_, wal_number_, mem_first_seq_, mem_first_time_};
      LETHE_RETURN_IF_ERROR(FlushMemTable(current, l));
    }
    return MaybeCompactLocked(l);
  }

  // Background mode: the write path only swaps the memtable and enqueues the
  // flush. Writers block solely through this explicit policy.
  const int effective_stop = EffectiveL0StopTrigger();
  Status s;
  bool stalled = false;
  uint64_t stall_start = 0;
  while (buffer_needs_flush()) {
    if (!bg_error_.ok()) {
      const DBHealth health =
          err_ != nullptr ? err_->health() : DBHealth::kFatal;
      if (health != DBHealth::kDegraded && health != DBHealth::kHealthy) {
        s = err_ != nullptr
                ? Status::IOError("DB is read-only after background error: " +
                                  err_->cause().ToString())
                : bg_error_;
        break;
      }
      // Degraded (or the probe→resume window): the memtable can still
      // absorb writes, so fall through — switch while the imm list has
      // room, stall at the cap below like any other backlogged writer.
    }
    if (closed_) {
      s = Status::InvalidArgument("DB is closed");
      break;
    }
    const bool imm_full =
        static_cast<int>(imm_.size()) >= options_.max_imm_memtables;
    const bool l0_stopped = effective_stop > 0 && l0_runs_ >= effective_stop;
    if (imm_full || l0_stopped) {
      // imm_full guarantees the flush chain is alive (scheduled or parked
      // behind an in-flight merge); l0_stopped implies the saturation
      // trigger fired (see clamp above) — but re-arm both defensively so
      // the wait below always has a wakeup source. Compaction first so a
      // yielding flush chain sees the job it is yielding to.
      MaybeScheduleCompactionLocked();
      MaybeScheduleFlushLocked();
      if (!stalled) {
        stalled = true;
        stall_start = NowSteadyMicros();
        stats_.write_stalls.fetch_add(1, std::memory_order_relaxed);
      }
      bg_work_done_cv_.wait(l);
      continue;  // re-evaluate: a flush or compaction committed
    }
    s = SwitchMemTableLocked();
    break;
  }
  if (stalled) {
    stats_.RecordStall(NowSteadyMicros() - stall_start);
  }
  LETHE_RETURN_IF_ERROR(s);
  MaybeScheduleCompactionLocked();
  return Status::OK();
}

Status DBImpl::SwitchMemTableLocked() {
  if (mem_->empty()) {
    return Status::OK();
  }
  ImmMemTable imm{mem_, wal_number_, mem_first_seq_, mem_first_time_};
  if (options_.enable_wal) {
    // Fresh WAL for the new memtable. The manifest keeps naming the oldest
    // unflushed WAL; recovery scans the directory for everything newer.
    const uint64_t number = versions_->NewFileNumber();
    std::unique_ptr<WritableFile> file;
    LETHE_RETURN_IF_ERROR(
        options_.env->NewWritableFile(WalFileName(dbname_, number), &file));
    wal_->Close().ok();
    wal_ = std::make_unique<WalWriter>(std::move(file), options_.sync_wal);
    wal_number_ = number;
  }
  imm_.push_back(std::move(imm));
  mem_ = std::make_shared<MemTable>();
  mem_staked_bytes_ = 0;  // fresh memtable; the frozen one counts as imm
  UpdateMemtableReservationLocked();
  MaybeScheduleFlushLocked();
  return Status::OK();
}

void DBImpl::MaybeScheduleFlushLocked() {
  if (bg_ == nullptr || closed_ || !bg_error_.ok()) {
    return;
  }
  if (imm_.empty()) {
    flush_deferred_ = false;  // nothing left to park on
    return;
  }
  if (exclusive_waiters_ > 0) {
    // Let the registry drain: the waiting exclusive job flushes the
    // pre-call memtables itself, and its commit re-arms this chain. A
    // continuously re-armed chain could otherwise out-race the waiter for
    // the registry forever (condition variables give no fairness).
    return;
  }
  if (flush_deferred_) {
    // Parked on an in-flight merge's footprint; only that merge's commit
    // (UnregisterJobLocked clears the flag first) re-arms the chain.
    // Without this, every stalled-writer wakeup would requeue a flush job
    // that immediately re-defers, ping-ponging until the blocker commits.
    return;
  }
  if (flush_scheduled_) {
    return;  // the chain is alive; it re-arms itself after each flush
  }
  if (l0_saturated_ && compaction_jobs_ > 0 &&
      static_cast<int>(imm_.size()) < options_.max_imm_memtables) {
    // L0 is over capacity and a compaction job is queued or running: yield
    // one round so the compaction's pick can claim the L0 run. A leveled
    // flush rewrites the whole run, so an unyielding chain re-claims L0 the
    // instant each flush commits and the compaction never finds it free —
    // the run then snowballs and every flush rewrites the growing pile.
    // Bounded: a full imm backlog flushes regardless (writers are already
    // paying the stall either way), and the chain is re-armed by the
    // compaction's commit (UnregisterJobLocked), by BackgroundCompaction's
    // exit when the pick came up empty, and by every memtable switch.
    return;
  }
  flush_scheduled_ = true;
  bg_jobs_inflight_++;
  if (!bg_->Schedule(BackgroundScheduler::Priority::kFlush,
                     [this] { BackgroundFlush(); }, bg_owner_)) {
    flush_scheduled_ = false;
    bg_jobs_inflight_--;  // shutting down; the destructor drains imm_
  }
}

// ---- merges (both modes) --------------------------------------------------

Status DBImpl::FlushMemTable(const ImmMemTable& imm,
                             std::unique_lock<std::mutex>& l,
                             bool* deferred) {
  if (imm.mem->empty()) {
    return Status::OK();
  }
  std::shared_ptr<const Version> version = versions_->current();

  MergeConfig config;
  config.is_flush = true;
  config.output_level = 0;
  config.snapshots = SnapshotSeqsLocked();

  // Sort-key span of the buffered data (entries + range tombstones). The
  // skiplist is key-ordered, so this is one cheap walk — no second decoding
  // pass over the buffer and no per-entry string churn.
  std::string smallest, largest;
  bool has_span = imm.mem->KeySpan(&smallest, &largest);
  std::vector<RangeTombstone> rts = imm.mem->range_tombstones()->ToVector();
  for (const RangeTombstone& rt : rts) {
    if (!has_span || Slice(rt.begin_key).compare(Slice(smallest)) < 0) {
      smallest = rt.begin_key;
    }
    if (!has_span || Slice(rt.end_key).compare(Slice(largest)) > 0) {
      largest = rt.end_key;
    }
    has_span = true;
  }

  std::vector<std::shared_ptr<FileMeta>> overlapping;
  if (options_.compaction_style == CompactionStyle::kLeveling) {
    // Greedy leveled flush: merge the buffer with the overlapping part of
    // the first disk level (§2: flushed runs are greedily sort-merged with
    // the run of Level 1).
    overlapping = version->OverlappingFiles(0, Slice(smallest), Slice(largest));
  }

  // Pool path: claim the flush footprint — the merged-in L0 files plus the
  // output span (memtable span widened over the merged files) — before any
  // work, deferring if a running compaction holds part of it. The RAII
  // guard releases the claim on every exit path below.
  FootprintClaim claim;
  if (deferred != nullptr && bg_ != nullptr) {
    JobFootprint footprint;
    footprint.is_flush = true;
    footprint.output_level = 0;
    footprint.CoverOutput(Slice(smallest), Slice(largest));
    for (const auto& file : overlapping) {
      footprint.AddInput(*file);
    }
    if (versions_->ConflictsWithInFlight(footprint)) {
      *deferred = true;
      return Status::OK();
    }
    claim = FootprintClaim(this, footprint);
  }

  VersionEdit edit;
  versions_->AddSeqTimeCheckpoint(imm.first_seq, imm.first_time, &edit);

  if (options_.compaction_style == CompactionStyle::kLeveling) {
    for (const auto& file : overlapping) {
      edit.removed_files.push_back({0, file->file_number});
      config.input_bytes += file->file_size;
    }
    config.output_run_id = 0;
    config.bottommost = version->IsBottommost(0);
  } else {
    config.output_run_id = versions_->NewRunId();
    config.bottommost = version->DeepestNonEmptyLevel() < 0;
  }

  // Subcompactions: a leveled flush greedily rewrites the overlapping part
  // of L0, which under a saturated buffer is the single hottest merge in
  // the engine — split it like any other merge. The memtable participates
  // in the byte-balance model as one more pseudo-file spanning the
  // buffered data.
  std::vector<std::string> boundaries;
  if (options_.max_subcompactions > 1 && !overlapping.empty() && has_span) {
    auto mem_span = std::make_shared<FileMeta>();
    mem_span->smallest_key = smallest;
    mem_span->largest_key = largest;
    mem_span->file_size = imm.mem->ApproximateMemoryUsage();
    std::vector<std::shared_ptr<FileMeta>> span_inputs = overlapping;
    span_inputs.push_back(std::move(mem_span));
    // Fence sampling opens the inputs and may read their metadata; that
    // must not happen under mu_. The claim above (or the write token in
    // inline mode) already fences conflicting work, and the inputs are
    // immutable snapshots, so the mutex can drop for the duration.
    l.unlock();
    boundaries = picker_->ComputeSubcompactionBoundaries(
        span_inputs, options_.max_subcompactions);
    l.lock();
  }

  // The heavy merge runs without the mutex: inputs are immutable (a frozen
  // memtable + on-disk files) and output file numbers come from atomics.
  // The write token (inline mode) or the registered footprint (pool mode)
  // guarantees no conflicting version mutation between the snapshot above
  // and the commit below.
  Status s = RunMergePartitioned(overlapping, imm.mem, std::move(rts),
                                 boundaries, config, &edit, l);

  const uint64_t flushed_wal = imm.wal_number;
  if (s.ok() && options_.inline_compactions) {
    s = RotateWalLocked(&edit);
  } else if (s.ok()) {
    // The manifest must keep naming the oldest WAL still carrying unflushed
    // data: the next pending memtable's, or the active one.
    edit.wal_number = imm_.size() > 1 ? imm_[1].wal_number : wal_number_;
  }
  if (s.ok()) {
    s = versions_->LogAndApply(&edit);
  }
  claim.Release();
  if (!s.ok()) {
    RemoveFailedMergeOutputs(options_.env, dbname_, edit);
    return s;
  }
  if (options_.inline_compactions) {
    mem_ = std::make_shared<MemTable>();
    mem_staked_bytes_ = 0;  // inline flush holds the token; mem_ is fresh
  } else {
    imm_.pop_front();
  }
  if (options_.enable_wal && flushed_wal != 0 && flushed_wal != wal_number_) {
    // Everything the flushed WAL covered is durable in the new version.
    options_.env->RemoveFile(WalFileName(dbname_, flushed_wal)).ok();
  }
  UpdateMemtableReservationLocked();
  RefreshTriggerStateLocked();
  if (err_ != nullptr) {
    err_->ReportSuccess();  // a committed flush refills the retry budget
  }
  return Status::OK();
}

void DBImpl::UpdateMemtableReservationLocked() {
  if (!memtable_reservation_.active()) {
    return;
  }
  size_t total = mem_staked_bytes_;
  for (const ImmMemTable& imm : imm_) {
    total += imm.mem->ApproximateMemoryUsage();
  }
  memtable_reservation_.Set(total);
  stats_.cache_reservation_bytes.store(total, std::memory_order_relaxed);
}

void DBImpl::RefreshTriggerStateLocked() {
  std::shared_ptr<const Version> version = versions_->current();
  earliest_ttl_expiry_ =
      picker_->EarliestTtlExpiry(*version, OldestSnapshotSeqLocked());
  buffer_ttl_ = picker_->BufferTtl(*version);
  l0_runs_ = version->num_levels() > 0 ? version->LevelRunCount(0) : 0;
  saturation_pending_ = false;
  l0_saturated_ = false;
  for (int level = 0; level < version->num_levels(); level++) {
    if (options_.compaction_style == CompactionStyle::kTiering) {
      if (version->LevelRunCount(level) >=
          static_cast<int>(options_.size_ratio)) {
        saturation_pending_ = true;
        l0_saturated_ = level == 0;
        return;
      }
    } else if (version->LevelBytes(level) >
               picker_->LevelCapacityBytes(level)) {
      saturation_pending_ = true;
      l0_saturated_ = level == 0;
      return;
    }
  }
}

Status DBImpl::MaybeCompactLocked(std::unique_lock<std::mutex>& l) {
  while (true) {
    uint64_t now = options_.clock->NowMicros();
    if (!saturation_pending_ && now < earliest_ttl_expiry_) {
      return Status::OK();  // O(1) fast path on the write path
    }
    std::shared_ptr<const Version> version = versions_->current();
    CompactionPick pick =
        picker_->Pick(*version, now, nullptr, OldestSnapshotSeqLocked());
    if (!pick.valid()) {
      RefreshTriggerStateLocked();
      if (!saturation_pending_ && now < earliest_ttl_expiry_) {
        return Status::OK();
      }
      // TTL will fire only later; the cached expiry is in the future.
      return Status::OK();
    }
    bool did_work = false;
    LETHE_RETURN_IF_ERROR(CompactOnce(pick, &did_work, l));
    RefreshTriggerStateLocked();
    if (!did_work) {
      return Status::OK();
    }
  }
}

Status DBImpl::CompactOnce(const CompactionPick& pick, bool* did_work,
                           std::unique_lock<std::mutex>& l, bool* deferred) {
  *did_work = false;
  std::shared_ptr<const Version> version = versions_->current();
  const int deepest = version->DeepestNonEmptyLevel();

  MergeConfig config;
  config.trigger = pick.trigger;
  config.input_files = pick.inputs.size();
  config.snapshots = SnapshotSeqsLocked();

  int target;
  if (options_.compaction_style == CompactionStyle::kTiering) {
    target = pick.level + 1;
    config.bottommost = deepest <= pick.level;
    config.output_run_id = versions_->NewRunId();
  } else {
    // A TTL-expired file already at the bottom is rewritten in place to
    // purge its tombstones; everything else flows one level down.
    if (pick.level == deepest &&
        pick.trigger == CompactionPick::Trigger::kTtlExpiry) {
      target = pick.level;
    } else {
      target = pick.level + 1;
    }
    if (target >= options_.max_levels) {
      target = options_.max_levels - 1;
    }
    config.bottommost = deepest <= target;
    config.output_run_id = 0;
  }
  config.output_level = target;

  VersionEdit edit;
  std::vector<std::shared_ptr<FileMeta>> all_inputs = pick.inputs;
  std::set<uint64_t> input_numbers;
  for (const auto& file : pick.inputs) {
    edit.removed_files.push_back({pick.level, file->file_number});
    input_numbers.insert(file->file_number);
  }

  bool trivial_move_possible = false;
  if (options_.compaction_style == CompactionStyle::kLeveling &&
      target != pick.level) {
    // Pull in the overlapping slice of the target level.
    std::string smallest = pick.inputs.front()->smallest_key;
    std::string largest = pick.inputs.front()->largest_key;
    for (const auto& file : pick.inputs) {
      if (Slice(file->smallest_key).compare(Slice(smallest)) < 0) {
        smallest = file->smallest_key;
      }
      if (Slice(file->largest_key).compare(Slice(largest)) > 0) {
        largest = file->largest_key;
      }
    }
    auto overlapping =
        version->OverlappingFiles(target, Slice(smallest), Slice(largest));
    if (overlapping.empty()) {
      const FileMeta& file = *pick.inputs.front();
      trivial_move_possible =
          !(config.bottommost && file.HasTombstones());
    }
    for (const auto& file : overlapping) {
      if (input_numbers.insert(file->file_number).second) {
        all_inputs.push_back(file);
        edit.removed_files.push_back({target, file->file_number});
      }
    }
  }

  // Pool path: claim the merge footprint — every input file plus the input
  // key span at the target level (outputs never escape it) — and defer if
  // it overlaps a job already in flight. The trivial move commits below
  // without ever releasing the mutex, so it needs the conflict check but
  // no registration. The RAII guard releases the claim on every exit path.
  FootprintClaim claim;
  if (deferred != nullptr && bg_ != nullptr) {
    JobFootprint footprint;
    footprint.output_level = target;
    for (const auto& file : all_inputs) {
      footprint.AddInput(*file);
    }
    if (versions_->ConflictsWithInFlight(footprint)) {
      *deferred = true;
      return Status::OK();
    }
    if (!trivial_move_possible) {
      claim = FootprintClaim(this, footprint);
    }
  }

  if (trivial_move_possible) {
    // Trivial move: metadata-only promotion (no I/O). The tombstone age
    // keeps counting from insertion, preserving the Dth bound.
    FileMeta moved = *pick.inputs.front();
    moved.run_id = 0;
    edit.added_files.emplace_back(target, std::move(moved));
    LETHE_RETURN_IF_ERROR(versions_->LogAndApply(&edit));
    stats_.trivial_moves.fetch_add(1, std::memory_order_relaxed);
    *did_work = true;
    if (err_ != nullptr) {
      err_->ReportSuccess();  // the manifest committed: storage is working
    }
    return Status::OK();
  }

  for (const auto& file : all_inputs) {
    config.input_bytes += file->file_size;
  }
  // Subcompactions: split the merge into byte-balanced key-range
  // partitions so idle pool workers can share one saturated level's merge.
  // Empty boundaries (the default, single-file inputs, or a degenerate key
  // span) keep the classic single-pass merge.
  std::vector<std::string> boundaries;
  if (options_.max_subcompactions > 1) {
    // Off-mutex: fence sampling opens the inputs and may read metadata.
    // The registered claim (or the inline write token) fences conflicting
    // work while the lock is down.
    l.unlock();
    boundaries = picker_->ComputeSubcompactionBoundaries(
        all_inputs, options_.max_subcompactions);
    l.lock();
  }
  Status s = RunMergePartitioned(all_inputs, /*mem=*/nullptr, {}, boundaries,
                                 config, &edit, l);
  if (s.ok()) {
    s = versions_->LogAndApply(&edit);
  }
  claim.Release();
  if (!s.ok()) {
    RemoveFailedMergeOutputs(options_.env, dbname_, edit);
    return s;
  }
  *did_work = true;
  if (err_ != nullptr) {
    err_->ReportSuccess();  // a committed merge refills the retry budget
  }
  return Status::OK();
}

Status DBImpl::RunMergePartitioned(
    const std::vector<std::shared_ptr<FileMeta>>& inputs,
    std::shared_ptr<MemTable> mem, std::vector<RangeTombstone> mem_rts,
    const std::vector<std::string>& boundaries, const MergeConfig& config,
    VersionEdit* edit, std::unique_lock<std::mutex>& l) {
  const size_t num_parts = boundaries.size() + 1;

  // Fan-out state shared by this thread and any pool helpers. Heap-owned
  // via shared_ptr: a helper that only gets scheduled after the barrier
  // has already released (every partition claimed by faster threads) must
  // still find live state when it finally runs and finds nothing to do.
  struct FanOut {
    std::mutex mu;
    std::condition_variable cv;
    size_t next = 0;  // next unclaimed partition
    int active = 0;   // partitions currently executing
    Status status;    // first failure wins
    std::atomic<bool> abort{false};
    std::vector<VersionEdit> edits;  // per-partition outputs
    std::vector<std::shared_ptr<FileMeta>> inputs;
    std::shared_ptr<MemTable> mem;  // flush only; pins the frozen buffer
    std::vector<RangeTombstone> mem_rts;
    std::vector<std::string> boundaries;
    MergeConfig config;
  };
  auto state = std::make_shared<FanOut>();
  state->edits.resize(num_parts);
  state->inputs = inputs;
  state->mem = std::move(mem);
  state->mem_rts = std::move(mem_rts);
  state->boundaries = boundaries;
  state->config = config;

  // One partition's merge: fresh iterators over the shared sources (a
  // frozen memtable for flushes; table readers are shared through the
  // table cache, so re-opening is cheap), range tombstones clipped to the
  // window, outputs into the partition's own edit. Touches no DB state
  // that needs mu_: file numbers and tombstone-time resolution go through
  // VersionSet's own synchronization.
  auto run_partition = [this](FanOut* fan, size_t index) -> Status {
    MergeConfig part_config = fan->config;
    if (index > 0) {
      part_config.partition_begin = fan->boundaries[index - 1];
    }
    if (index < fan->boundaries.size()) {
      part_config.partition_end = fan->boundaries[index];
    }
    part_config.count_merge_stats = index == 0;
    part_config.abort = &fan->abort;
    // Source order (memtable first, then files) and tombstone order
    // (buffered first, then per-file) mirror the unsplit paths exactly, so
    // a single-partition run stays byte-identical to them.
    std::vector<std::unique_ptr<InternalIterator>> iters;
    std::vector<RangeTombstone> rts = fan->mem_rts;
    if (fan->mem != nullptr) {
      iters.push_back(fan->mem->NewIterator());
    }
    LETHE_RETURN_IF_ERROR(CollectFileInputs(versions_.get(), fan->inputs,
                                            &iters, &rts, nullptr));
    if (part_config.count_merge_stats) {
      // Pre-clip total: a bottommost merge persists each input tombstone
      // once, however many partition pieces it gets clipped into. Pieces a
      // live snapshot pins (seq above the oldest pin) are carried forward,
      // not persisted, so they do not count.
      const SequenceNumber oldest_pin = part_config.snapshots.empty()
                                            ? kMaxSequenceNumber
                                            : part_config.snapshots.front();
      uint64_t droppable = 0;
      for (const RangeTombstone& rt : rts) {
        if (rt.seq <= oldest_pin) {
          droppable++;
        }
      }
      part_config.dropped_range_tombstones = droppable;
    }
    const std::vector<RangeTombstone> clipped = ClipRangeTombstones(
        rts, part_config.partition_begin, part_config.partition_end);
    auto merged = NewMergingIterator(std::move(iters));
    MergeExecutor executor(options_, versions_.get(), &stats_);
    return executor.Run(merged.get(), clipped, part_config,
                        &fan->edits[index]);
  };

  // Drain loop shared by this thread and the helpers: claim the next
  // partition, run it, repeat until the queue is empty or a sibling
  // failed. The calling thread always participates, so the merge completes
  // even when every other worker is busy or the pool is gone — helpers
  // only add bandwidth. This is what makes the fan-out deadlock-free: no
  // thread ever waits for a partition it could be running itself.
  auto drain = [this, run_partition](const std::shared_ptr<FanOut>& fan) {
    std::unique_lock<std::mutex> fl(fan->mu);
    while (fan->status.ok() && fan->next < fan->edits.size()) {
      const size_t index = fan->next++;
      fan->active++;
      fl.unlock();
      Status s = run_partition(fan.get(), index);
      fl.lock();
      fan->active--;
      if (!s.ok() && fan->status.ok()) {
        fan->status = s;
        // Siblings poll this mid-merge and bail out instead of finishing
        // outputs the barrier below is going to delete anyway.
        fan->abort.store(true, std::memory_order_relaxed);
      }
    }
    fan->cv.notify_all();
  };

  l.unlock();
  if (num_parts > 1 && bg_ != nullptr) {
    const auto priority =
        config.is_flush
            ? BackgroundScheduler::Priority::kFlush
            : (config.trigger == CompactionPick::Trigger::kTtlExpiry
                   ? BackgroundScheduler::Priority::kDeleteDrivenCompaction
                   : BackgroundScheduler::Priority::kSpaceDrivenCompaction);
    for (size_t h = 1; h < num_parts; h++) {
      // Best effort: a rejected job (shutdown) just means this thread
      // merges that partition itself.
      bg_->Schedule(priority, [drain, state] { drain(state); }, bg_owner_);
    }
  }
  drain(state);
  {
    // Completion barrier: every claimed partition has finished (successes
    // and aborts alike) before the combined edit is assembled.
    std::unique_lock<std::mutex> fl(state->mu);
    state->cv.wait(fl, [&] {
      return state->active == 0 && (!state->status.ok() ||
                                    state->next >= state->edits.size());
    });
  }
  l.lock();

  if (!state->status.ok()) {
    // No partition's edit was installed; remove every finished output of
    // every partition. Outputs a crashed process leaves behind instead are
    // reaped by recovery's orphan sweep.
    for (const VersionEdit& part : state->edits) {
      RemoveFailedMergeOutputs(options_.env, dbname_, part);
    }
    return state->status;
  }

  // Assemble the single atomic VersionEdit: partitions are disjoint,
  // ascending key windows, so appending their outputs in partition order
  // keeps the level's files key-ordered.
  uint64_t total_bytes = 0, max_partition_bytes = 0;
  for (VersionEdit& part : state->edits) {
    uint64_t part_bytes = 0;
    for (auto& [level, meta] : part.added_files) {
      part_bytes += meta.file_size;
      edit->added_files.emplace_back(level, std::move(meta));
    }
    total_bytes += part_bytes;
    max_partition_bytes = std::max(max_partition_bytes, part_bytes);
  }
  if (num_parts > 1) {
    stats_.partitioned_compactions.fetch_add(1, std::memory_order_relaxed);
    stats_.subcompactions_dispatched.fetch_add(num_parts,
                                               std::memory_order_relaxed);
    if (total_bytes > 0) {
      stats_.RecordSubcompactionSkew(max_partition_bytes * num_parts * 1000 /
                                     total_bytes);
    }
  }
  return Status::OK();
}

Status DBImpl::CompactAllLocked(std::unique_lock<std::mutex>& l) {
  std::shared_ptr<const Version> version = versions_->current();
  int deepest = version->DeepestNonEmptyLevel();
  if (deepest < 0) {
    return Status::OK();
  }

  MergeConfig config;
  config.trigger = CompactionPick::Trigger::kSaturation;
  config.output_level = deepest;
  config.bottommost = true;
  config.snapshots = SnapshotSeqsLocked();
  config.output_run_id =
      options_.compaction_style == CompactionStyle::kTiering
          ? versions_->NewRunId()
          : 0;

  VersionEdit edit;
  std::vector<std::shared_ptr<FileMeta>> all_inputs;
  for (const auto& [level, file] : version->AllFiles()) {
    all_inputs.push_back(file);
    edit.removed_files.push_back({level, file->file_number});
  }
  config.input_files = all_inputs.size();

  std::vector<std::unique_ptr<InternalIterator>> iters;
  std::vector<RangeTombstone> rts;
  LETHE_RETURN_IF_ERROR(CollectFileInputs(versions_.get(), all_inputs, &iters,
                                          &rts, &config.input_bytes));
  auto merged = NewMergingIterator(std::move(iters));
  MergeExecutor executor(options_, versions_.get(), &stats_);
  l.unlock();
  Status merge_status = executor.Run(merged.get(), rts, config, &edit);
  l.lock();
  LETHE_RETURN_IF_ERROR(merge_status);
  LETHE_RETURN_IF_ERROR(versions_->LogAndApply(&edit));
  RefreshTriggerStateLocked();
  return Status::OK();
}

Status DBImpl::SecondaryRangeDeleteLocked(uint64_t lo, uint64_t hi,
                                          std::unique_lock<std::mutex>& l) {
  std::shared_ptr<const Version> version = versions_->current();
  VersionEdit edit;
  // Page reads and in-place boundary rewrites run without the mutex;
  // foreground readers are fenced by FileMeta::page_generation.
  l.unlock();
  Status s = ExecuteSecondaryRangeDelete(options_, versions_.get(), &stats_,
                                         *version, lo, hi, &edit);
  l.lock();
  LETHE_RETURN_IF_ERROR(s);
  if (!edit.removed_files.empty() || !edit.added_files.empty()) {
    LETHE_RETURN_IF_ERROR(versions_->LogAndApply(&edit));
    RefreshTriggerStateLocked();
    MaybeScheduleCompactionLocked();
  }
  return Status::OK();
}

// ---- background mode ------------------------------------------------------

void DBImpl::MaybeScheduleCompactionLocked() {
  if (bg_ == nullptr || closed_ || !bg_error_.ok()) {
    return;
  }
  if (compaction_jobs_ >= options_.background_threads) {
    return;  // the pool is saturated; completions re-arm
  }
  if (compaction_backoff_) {
    return;  // last probe found nothing unclaimed; a commit re-arms
  }
  if (exclusive_waiters_ > 0) {
    return;  // let the registry drain so the exclusive job can claim it
  }
  const uint64_t now = options_.clock->NowMicros();
  const bool ttl_due = now >= earliest_ttl_expiry_;
  if (!saturation_pending_ && !ttl_due && !compaction_deferred_) {
    return;
  }
  // The paper's priority rule: delete-driven (TTL) work outranks
  // space-driven (saturation) work; the picker applies the same precedence
  // when the job runs.
  const auto priority =
      ttl_due ? BackgroundScheduler::Priority::kDeleteDrivenCompaction
              : BackgroundScheduler::Priority::kSpaceDrivenCompaction;
  compaction_deferred_ = false;
  compaction_jobs_++;
  bg_jobs_inflight_++;
  if (!bg_->Schedule(priority, [this] { BackgroundCompaction(); },
                     bg_owner_)) {
    compaction_jobs_--;
    bg_jobs_inflight_--;
  }
}

void DBImpl::UnregisterJobLocked(uint64_t job_id) {
  versions_->UnregisterInFlightJob(job_id);
  // Work that parked on this job's footprint re-arms now. Both calls are
  // guarded no-ops when nothing is due, so this never self-amplifies: a
  // deferring job does NOT re-arm itself (that would spin); only real
  // completions do.
  // The claim set changed: probing makes sense again for both parked
  // chains.
  compaction_backoff_ = false;
  flush_deferred_ = false;
  // Compaction first: if this commit left L0 over capacity, the flush
  // chain sees compaction_jobs_ > 0 and yields the claim race to it.
  MaybeScheduleCompactionLocked();
  MaybeScheduleFlushLocked();
  bg_work_done_cv_.notify_all();
}

void DBImpl::BackgroundFlush() {
  std::unique_lock<std::mutex> l(mu_);
  bool deferred = false;
  if (!closed_ && bg_error_.ok()) {
    Status s = FlushOldestImmLocked(l, &deferred);
    if (!s.ok()) {
      RecordBackgroundErrorLocked(BackgroundJobKind::kFlush, s);
    }
    if (deferred) {
      flush_deferred_ = true;
      stats_.bg_jobs_deferred_overlap.fetch_add(1, std::memory_order_relaxed);
    }
    MaybeScheduleCompactionLocked();
  }
  flush_scheduled_ = false;
  if (!deferred) {
    MaybeScheduleFlushLocked();  // next link in the chain
  }
  bg_jobs_inflight_--;
  MaybeRunPendingOrphanSweepLocked();
  bg_work_done_cv_.notify_all();
}

void DBImpl::BackgroundCompaction() {
  std::unique_lock<std::mutex> l(mu_);
  bool deferred = false;
  if (!closed_ && bg_error_.ok()) {
    std::shared_ptr<const Version> version = versions_->current();
    CompactionPick pick =
        picker_->Pick(*version, options_.clock->NowMicros(),
                      &versions_->InFlightInputFiles(),
                      OldestSnapshotSeqLocked());
    if (pick.valid()) {
      bool did_work = false;
      Status s = CompactOnce(pick, &did_work, l, &deferred);
      if (!s.ok()) {
        RecordBackgroundErrorLocked(BackgroundJobKind::kCompaction, s);
      }
    } else if (versions_->InFlightJobCount() > 0) {
      // Nothing unclaimed to work on; stop trigger-based scheduling until
      // an in-flight merge commits (its UnregisterJobLocked re-arms). With
      // an empty registry no commit would come to clear the flag — the
      // pick came up empty for real, and RefreshTriggerStateLocked below
      // resets the triggers instead.
      compaction_backoff_ = true;
    }
    RefreshTriggerStateLocked();
    compaction_jobs_--;
    if (deferred) {
      // Park: the blocking job's completion re-arms via
      // UnregisterJobLocked; re-arming here would spin through the queue.
      // Backoff too — otherwise every write-path probe would requeue this
      // same doomed pick until the blocker commits.
      compaction_deferred_ = true;
      compaction_backoff_ = true;
      stats_.bg_jobs_deferred_overlap.fetch_add(1, std::memory_order_relaxed);
    } else {
      MaybeScheduleCompactionLocked();  // one pick per job; re-arm if needed
    }
  } else {
    compaction_jobs_--;
  }
  // Un-park a flush chain that yielded its L0 claim to this job: if the
  // pick came up empty (no commit, so no UnregisterJobLocked re-arm) and
  // no further compaction is queued, the flush must not stay parked.
  MaybeScheduleFlushLocked();
  bg_jobs_inflight_--;
  MaybeRunPendingOrphanSweepLocked();
  bg_work_done_cv_.notify_all();
}

Status DBImpl::AcquireExclusiveLocked(FootprintClaim* claim,
                                      std::unique_lock<std::mutex>& l) {
  // Announce intent first: MaybeScheduleCompactionLocked stops launching
  // new compaction jobs while an exclusive job waits, so under sustained
  // write load the registry actually drains instead of starving us.
  exclusive_waiters_++;
  // Only the memtables already frozen when we got here must reach disk
  // (pre-call entries in the *active* memtable were handled under the
  // write token). Draining newer ones too would livelock against
  // sustained ingest — writers can freeze memtables as fast as one worker
  // flushes them.
  size_t pending_imms = imm_.size();
  Status s;
  while (true) {
    if (closed_) {
      s = Status::InvalidArgument("DB is closed");
      break;
    }
    if (!bg_error_.ok()) {
      s = bg_error_;
      break;
    }
    if (pending_imms > 0 && !imm_.empty()) {
      // Drain the pre-call memtables on this worker so the exclusive job
      // sees every pre-call write on disk (the flush-outranks-us
      // contract). A concurrently running flush job wins the is_flush
      // claim and this attempt defers until it commits.
      bool deferred = false;
      s = FlushOldestImmLocked(l, &deferred);
      if (!s.ok()) {
        break;
      }
      if (deferred) {
        bg_work_done_cv_.wait(l);
      } else {
        pending_imms--;
      }
      continue;
    }
    JobFootprint footprint;
    footprint.exclusive = true;
    if (!versions_->ConflictsWithInFlight(footprint)) {
      // The check and the claim share this mutex hold, so two exclusive
      // jobs can never both slip past an empty registry.
      *claim = FootprintClaim(this, footprint);
      break;
    }
    bg_work_done_cv_.wait(l);
  }
  exclusive_waiters_--;
  if (!s.ok()) {
    // We suppressed background scheduling while waiting but will not
    // commit anything to re-arm it; hand the baton back.
    MaybeScheduleFlushLocked();
    MaybeScheduleCompactionLocked();
  }
  return s;
}

Status DBImpl::RunOnWorkerAndWait(
    BackgroundScheduler::Priority priority, BackgroundJobKind kind,
    const std::function<Status(std::unique_lock<std::mutex>&)>& fn,
    std::unique_lock<std::mutex>& l) {
  struct JobResult {
    Status status;
    bool done = false;
  } result;  // guarded by mu_; outlives the job because we wait for done
  bg_jobs_inflight_++;
  const bool scheduled = bg_->Schedule(
      priority,
      [this, &result, &fn, kind] {
        std::unique_lock<std::mutex> jl(mu_);
        Status s;
        if (!closed_ && bg_error_.ok()) {
          s = fn(jl);
          if (!s.ok()) {
            RecordBackgroundErrorLocked(kind, s);
          }
        } else {
          s = bg_error_;
        }
        result.status = s;
        result.done = true;
        bg_jobs_inflight_--;
        MaybeRunPendingOrphanSweepLocked();
        bg_work_done_cv_.notify_all();
      },
      bg_owner_);
  if (!scheduled) {
    bg_jobs_inflight_--;
    return Status::InvalidArgument("DB is closing");
  }
  bg_work_done_cv_.wait(l, [&result] { return result.done; });
  return result.status;
}

void DBImpl::RecordBackgroundErrorLocked(BackgroundJobKind kind,
                                         const Status& s) {
  if (bg_error_.ok()) {
    bg_error_ = s;  // first error wins, as before the handler existed
  }
  if (err_ != nullptr) {
    // Safe with mu_ held: ReportError never invokes callbacks synchronously.
    err_->ReportError(kind, s);
  }
  bg_work_done_cv_.notify_all();
}

Status DBImpl::ProbeStorage() {
  // Runs on the recovery thread with no DB lock held; the probe file name is
  // fixed and never collides with numbered DB files.
  const std::string probe_name = dbname_ + "/HEALTHCHECK";
  std::unique_ptr<WritableFile> file;
  LETHE_RETURN_IF_ERROR(options_.env->NewWritableFile(probe_name, &file));
  LETHE_RETURN_IF_ERROR(file->Append(Slice("lethe-health-probe")));
  LETHE_RETURN_IF_ERROR(file->Sync());
  LETHE_RETURN_IF_ERROR(file->Close());
  options_.env->RemoveFile(probe_name).ok();
  return Status::OK();
}

void DBImpl::MaybeRunPendingOrphanSweepLocked() {
  if (orphan_sweep_pending_ && !closed_ && bg_error_.ok() &&
      bg_jobs_inflight_ == 0 && versions_->InFlightJobCount() == 0) {
    orphan_sweep_pending_ = false;
    RemoveOrphanFilesLocked().ok();
  }
}

void DBImpl::ResumeFromBackgroundError() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || bg_error_.ok()) {
    return;
  }
  bg_error_ = Status::OK();
  // The failed job may have left its park/backoff latches set with no
  // commit coming to clear them; release the gates (compaction_deferred_ is
  // a schedule *trigger*, consumed below, so it stays). Re-stake the
  // memtable reservation, re-arm both chains, wake stalled writers.
  compaction_backoff_ = false;
  flush_deferred_ = false;
  if (bg_jobs_inflight_ == 0 && versions_->InFlightJobCount() == 0) {
    // Reclaim outputs the aborted merges left behind (partially written
    // files their failure path could not name). Only safe with no job in
    // flight: a running merge's outputs are not yet referenced anywhere.
    RemoveOrphanFilesLocked().ok();
  } else {
    // A job is still draining (or a retry is already queued): defer the
    // sweep to the moment the registry empties, or the aborted outputs of
    // every failed attempt accumulate until the next reopen.
    orphan_sweep_pending_ = true;
  }
  UpdateMemtableReservationLocked();
  RefreshTriggerStateLocked();
  MaybeScheduleFlushLocked();
  MaybeScheduleCompactionLocked();
  bg_work_done_cv_.notify_all();
}

Status DBImpl::FlushOldestImmLocked(std::unique_lock<std::mutex>& l,
                                    bool* deferred) {
  if (imm_.empty()) {
    return Status::OK();
  }
  ImmMemTable imm = imm_.front();  // copy: pins the memtable across unlock
  return FlushMemTable(imm, l, deferred);
}

Status DBImpl::WaitForFlushLocked(std::unique_lock<std::mutex>& l) {
  while (!imm_.empty()) {
    if (!bg_error_.ok()) {
      return bg_error_;
    }
    if (closed_) {
      return Status::InvalidArgument("DB is closed");
    }
    bg_work_done_cv_.wait(l);
  }
  return bg_error_;
}

// ---- maintenance API ------------------------------------------------------

Status DBImpl::Flush() {
  std::unique_lock<std::mutex> l(mu_);
  if (closed_) {
    return Status::InvalidArgument("DB is closed");
  }
  Writer w(nullptr, false);
  JoinWriterQueue(&w, l);
  Status s;
  if (options_.inline_compactions) {
    ImmMemTable current{mem_, wal_number_, mem_first_seq_, mem_first_time_};
    s = FlushMemTable(current, l);
    if (s.ok()) {
      s = MaybeCompactLocked(l);
    }
    CompleteGroup(&w, &w, s, l);
    return s;
  }
  s = bg_error_.ok() ? SwitchMemTableLocked() : bg_error_;
  CompleteGroup(&w, &w, s, l);  // release the token before the barrier
  if (s.ok()) {
    s = WaitForFlushLocked(l);
  }
  return s;
}

Status DBImpl::WaitForCompact() {
  std::unique_lock<std::mutex> l(mu_);
  if (options_.inline_compactions) {
    Writer w(nullptr, false);
    JoinWriterQueue(&w, l);
    Status s = MaybeCompactLocked(l);
    CompleteGroup(&w, &w, s, l);
    return s;
  }
  while (true) {
    if (!bg_error_.ok()) {
      return bg_error_;
    }
    if (closed_) {
      return Status::InvalidArgument("DB is closed");
    }
    // Defensive re-arm: parked work with no running job left to wake it
    // (can only happen if a completion raced shutdown of its re-arm).
    if (bg_jobs_inflight_ == 0) {
      compaction_backoff_ = false;
      if (flush_deferred_) {
        flush_deferred_ = false;
        MaybeScheduleFlushLocked();
      }
      if (compaction_deferred_) {
        MaybeScheduleCompactionLocked();
      }
    }
    const bool busy = !imm_.empty() || bg_jobs_inflight_ > 0 ||
                      flush_deferred_ || compaction_deferred_ ||
                      versions_->InFlightJobCount() > 0;
    if (!busy) {
      RefreshTriggerStateLocked();
      std::shared_ptr<const Version> version = versions_->current();
      if (!picker_->Pick(*version, options_.clock->NowMicros(), nullptr,
                         OldestSnapshotSeqLocked())
               .valid()) {
        // Quiescent: nothing queued, nothing to pick. Reap obsolete files
        // whose pinning snapshots have since been released — no future
        // commit may come to do it.
        versions_->SweepObsoleteFiles();
        return Status::OK();
      }
      compaction_backoff_ = false;  // the probe proved there is work
      MaybeScheduleCompactionLocked();
      if (compaction_jobs_ == 0) {
        // The cached triggers disagree with the picker (e.g. a TTL edge);
        // force one compaction round rather than spinning.
        saturation_pending_ = true;
        MaybeScheduleCompactionLocked();
        if (compaction_jobs_ == 0) {
          return bg_error_;  // scheduler is shutting down
        }
      }
      continue;
    }
    bg_work_done_cv_.wait(l);
  }
}

Status DBImpl::CompactUntilQuiescent() {
  if (!options_.inline_compactions) {
    LETHE_RETURN_IF_ERROR(Flush());
    return WaitForCompact();
  }
  std::unique_lock<std::mutex> l(mu_);
  Writer w(nullptr, false);
  JoinWriterQueue(&w, l);
  ImmMemTable current{mem_, wal_number_, mem_first_seq_, mem_first_time_};
  Status s = FlushMemTable(current, l);
  while (s.ok()) {
    std::shared_ptr<const Version> version = versions_->current();
    CompactionPick pick = picker_->Pick(*version, options_.clock->NowMicros(),
                                        nullptr, OldestSnapshotSeqLocked());
    if (!pick.valid()) {
      RefreshTriggerStateLocked();
      break;
    }
    bool did_work = false;
    s = CompactOnce(pick, &did_work, l);
    if (s.ok() && !did_work) {
      RefreshTriggerStateLocked();
      break;
    }
  }
  CompleteGroup(&w, &w, s, l);
  return s;
}

Status DBImpl::CompactAll() {
  if (options_.inline_compactions) {
    std::unique_lock<std::mutex> l(mu_);
    Writer w(nullptr, false);
    JoinWriterQueue(&w, l);
    ImmMemTable current{mem_, wal_number_, mem_first_seq_, mem_first_time_};
    Status s = FlushMemTable(current, l);
    if (s.ok()) {
      s = CompactAllLocked(l);
    }
    CompleteGroup(&w, &w, s, l);
    return s;
  }
  LETHE_RETURN_IF_ERROR(Flush());
  std::unique_lock<std::mutex> l(mu_);
  if (closed_) {
    return Status::InvalidArgument("DB is closed");
  }
  // Run the merge on a worker; it consumes every file in the tree, so it
  // first drains the registry and claims the whole tree (exclusive).
  return RunOnWorkerAndWait(
      BackgroundScheduler::Priority::kSpaceDrivenCompaction,
      BackgroundJobKind::kCompaction,
      [this](std::unique_lock<std::mutex>& jl) {
        FootprintClaim claim;
        LETHE_RETURN_IF_ERROR(AcquireExclusiveLocked(&claim, jl));
        return CompactAllLocked(jl);
      },
      l);
}

Status DBImpl::SecondaryRangeDelete(const WriteOptions& options,
                                    uint64_t delete_key_begin,
                                    uint64_t delete_key_end) {
  if (delete_key_begin >= delete_key_end) {
    return Status::InvalidArgument("empty secondary range delete");
  }
  std::unique_lock<std::mutex> l(mu_);
  if (closed_) {
    return Status::InvalidArgument("DB is closed");
  }
  Writer w(nullptr, false);
  JoinWriterQueue(&w, l);
  stats_.secondary_range_deletes.fetch_add(1, std::memory_order_relaxed);

  // WAL the purge *before* applying it: the active memtable's entries live
  // on in the log, so recovery must replay the purge over them or the
  // delete silently un-happens at the next open. Honors the caller's sync
  // request like any other write — an acknowledged delete must not vanish
  // in a torn WAL tail.
  if (options_.enable_wal && wal_ != nullptr) {
    // Same allocate-locally / publish-on-success discipline as ApplyGroup:
    // the token guards sequence allocation, and a failed append must not
    // advance the visible sequence.
    SequenceNumber next_seq = versions_->LastSequence();
    WalRecord record;
    record.kind = WalRecord::Kind::kSecondaryRangeDelete;
    record.seq = ++next_seq;
    record.time = options_.clock->NowMicros();
    record.delete_key = delete_key_begin;
    record.delete_key_end = delete_key_end;
    bool appended = false;
    Status ws = wal_->AddRecords(&record, 1, options.sync, &appended);
    if (appended) {
      stats_.wal_appends.fetch_add(1, std::memory_order_relaxed);
    }
    if (!ws.ok()) {
      if (appended) {
        versions_->SetLastSequence(next_seq);  // burn: bytes may be on disk
      }
      if (err_ != nullptr) {
        RecordBackgroundErrorLocked(BackgroundJobKind::kWalWrite, ws);
      }
      CompleteGroup(&w, &w, ws, l);
      return ws;
    }
    if (options.sync || options_.sync_wal) {
      stats_.wal_syncs.fetch_add(1, std::memory_order_relaxed);
    }
    versions_->SetLastSequence(next_seq);
  }

  // The active memtable is mutable, so buffered entries are purged in place
  // (no tombstones needed). Requires the write token.
  uint64_t purged =
      mem_->PurgeDeleteKeyRange(delete_key_begin, delete_key_end);
  stats_.entries_purged_by_srd.fetch_add(purged, std::memory_order_relaxed);

  if (options_.inline_compactions) {
    Status s = SecondaryRangeDeleteLocked(delete_key_begin, delete_key_end, l);
    CompleteGroup(&w, &w, s, l);
    return s;
  }

  // Background mode: release the token, then run the disk part as a
  // prioritized job. The job drains every pending memtable (flushing on its
  // own worker) and claims the whole tree before scanning, so no pre-call
  // entry escapes the delete and no concurrent merge resurrects one.
  CompleteGroup(&w, &w, Status::OK(), l);
  if (!bg_error_.ok()) {
    return bg_error_;
  }
  return RunOnWorkerAndWait(
      BackgroundScheduler::Priority::kSecondaryDelete,
      BackgroundJobKind::kSecondaryDelete,
      [this, delete_key_begin,
       delete_key_end](std::unique_lock<std::mutex>& jl) {
        FootprintClaim claim;
        LETHE_RETURN_IF_ERROR(AcquireExclusiveLocked(&claim, jl));
        return SecondaryRangeDeleteLocked(delete_key_begin, delete_key_end,
                                          jl);
      },
      l);
}

// ---- reads ----------------------------------------------------------------

Status DBImpl::GetWithDeleteKey(const ReadOptions& options, const Slice& key,
                                std::string* value, uint64_t* delete_key) {
  ReadSnapshot snap = GetReadSnapshot();
  stats_.point_lookups.fetch_add(1, std::memory_order_relaxed);

  // Snapshot reads bound visibility: versions and tombstones committed
  // after the pinned sequence do not exist for this lookup.
  const SequenceNumber bound = options.snapshot != nullptr
                                   ? options.snapshot->sequence()
                                   : kMaxSequenceNumber;

  SequenceNumber max_rt_seq = snap.mem->MaxRangeTombstoneCoverSeq(key, bound);

  ParsedEntry mem_entry;
  if (snap.mem->Get(key, &mem_entry, bound)) {
    if (max_rt_seq > mem_entry.seq || mem_entry.IsTombstone()) {
      return Status::NotFound(key);
    }
    *value = mem_entry.value.ToString();
    *delete_key = mem_entry.delete_key;
    return Status::OK();
  }

  // Immutable memtables, newest first, accumulating range-tombstone
  // coverage on the way down (sources are strictly ordered by sequence).
  for (auto it = snap.imm.rbegin(); it != snap.imm.rend(); ++it) {
    const MemTable& imm = **it;
    max_rt_seq =
        std::max(max_rt_seq, imm.MaxRangeTombstoneCoverSeq(key, bound));
    if (imm.Get(key, &mem_entry, bound)) {
      if (max_rt_seq > mem_entry.seq || mem_entry.IsTombstone()) {
        return Status::NotFound(key);
      }
      *value = mem_entry.value.ToString();
      *delete_key = mem_entry.delete_key;
      return Status::OK();
    }
  }

  for (int level = 0; level < snap.version->num_levels(); level++) {
    const auto& runs = snap.version->levels()[level];
    for (auto run = runs.rbegin(); run != runs.rend(); ++run) {
      int idx = run->FindFile(key);
      if (idx < 0) {
        continue;
      }
      for (size_t i = idx;
           i < run->files.size() &&
           Slice(run->files[i]->smallest_key).compare(key) <= 0;
           i++) {
        const auto& file = run->files[i];
        std::shared_ptr<SSTableReader> table;
        LETHE_RETURN_IF_ERROR(
            versions_->table_cache()->GetTable(*file, &table));
        // Accumulate this file's range-tombstone coverage before deciding.
        // The FileMeta count gates the index fetch, so rt-free files cost
        // no metadata access at all on this hot path.
        if (file->num_range_tombstones > 0) {
          if (options_.fragmented_range_tombstones) {
            FragmentedRtHandle frt;
            LETHE_RETURN_IF_ERROR(
                table->GetFragmentedRangeTombstones(&stats_, &frt));
            stats_.rt_cover_probes.fetch_add(1, std::memory_order_relaxed);
            max_rt_seq = std::max(max_rt_seq, frt->MaxCoverSeq(key, bound));
          } else {
            TableIndexHandle index;
            LETHE_RETURN_IF_ERROR(table->GetIndex(&index));
            for (const RangeTombstone& rt : index->range_tombstones) {
              if (rt.Contains(key) && rt.seq <= bound) {
                max_rt_seq = std::max(max_rt_seq, rt.seq);
              }
            }
          }
        }
        bool found = false;
        TableGetResult result;
        LETHE_RETURN_IF_ERROR(table->Get(key, file.get(), &stats_, &found,
                                         &result, options.fill_page_cache,
                                         bound));
        if (found) {
          if (max_rt_seq > result.seq ||
              result.type == ValueType::kTombstone) {
            return Status::NotFound(key);
          }
          // The result's value aliases the (possibly cached) decoded page;
          // this assign is the only copy on the whole lookup path.
          value->assign(result.value.data(), result.value.size());
          *delete_key = result.delete_key;
          return Status::OK();
        }
      }
    }
  }
  return Status::NotFound(key);
}

Status DBImpl::Get(const ReadOptions& options, const Slice& key,
                   std::string* value) {
  uint64_t delete_key;
  return GetWithDeleteKey(options, key, value, &delete_key);
}

const Snapshot* DBImpl::GetSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  // LastSequence is published only after its group is fully applied
  // (ApplyGroup pass 3), so the pinned view never splits a batch.
  return snapshots_.New(versions_->LastSequence());
}

void DBImpl::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  snapshots_.Delete(snapshot);
  // Entries retained only for this snapshot become droppable at the next
  // merge that sees them; no eager rewrite is triggered (mirrors how
  // graveyard files wait for the next sweep).
}

Status DBImpl::PauseWrites() {
  std::unique_lock<std::mutex> l(mu_);
  if (closed_) {
    return Status::InvalidArgument("DB is closed");
  }
  // An exclusive Writer at the queue front holds the write token: leaders
  // never merge past a null batch (BuildBatchGroup stops there), so once
  // this writer reaches the front every earlier write has fully committed
  // and published its sequences, and no later one can start.
  pause_writer_ = std::make_unique<Writer>(nullptr, false);
  JoinWriterQueue(pause_writer_.get(), l);
  return Status::OK();
}

void DBImpl::ResumeWrites() {
  std::unique_lock<std::mutex> l(mu_);
  if (pause_writer_ == nullptr) {
    return;
  }
  CompleteGroup(pause_writer_.get(), pause_writer_.get(), Status::OK(), l);
  pause_writer_.reset();
}

Status DBImpl::LatestSeqForKey(const Slice& key, SequenceNumber* seq) {
  ReadSnapshot snap = GetReadSnapshot();

  // Newest-first walk, mirroring GetWithDeleteKey: the first point entry
  // found is the newest version; range-tombstone coverage accumulates on
  // the way down and may postdate it.
  SequenceNumber latest = snap.mem->MaxRangeTombstoneCoverSeq(key);
  ParsedEntry entry;
  if (snap.mem->Get(key, &entry)) {
    *seq = std::max(latest, entry.seq);
    return Status::OK();
  }
  for (auto it = snap.imm.rbegin(); it != snap.imm.rend(); ++it) {
    const MemTable& imm = **it;
    latest = std::max(latest, imm.MaxRangeTombstoneCoverSeq(key));
    if (imm.Get(key, &entry)) {
      *seq = std::max(latest, entry.seq);
      return Status::OK();
    }
  }
  for (int level = 0; level < snap.version->num_levels(); level++) {
    const auto& runs = snap.version->levels()[level];
    for (auto run = runs.rbegin(); run != runs.rend(); ++run) {
      int idx = run->FindFile(key);
      if (idx < 0) {
        continue;
      }
      for (size_t i = idx;
           i < run->files.size() &&
           Slice(run->files[i]->smallest_key).compare(key) <= 0;
           i++) {
        const auto& file = run->files[i];
        std::shared_ptr<SSTableReader> table;
        LETHE_RETURN_IF_ERROR(versions_->table_cache()->GetTable(*file, &table));
        if (file->num_range_tombstones > 0) {
          if (options_.fragmented_range_tombstones) {
            FragmentedRtHandle frt;
            LETHE_RETURN_IF_ERROR(
                table->GetFragmentedRangeTombstones(&stats_, &frt));
            stats_.rt_cover_probes.fetch_add(1, std::memory_order_relaxed);
            latest = std::max(latest, frt->MaxCoverSeq(key));
          } else {
            TableIndexHandle index;
            LETHE_RETURN_IF_ERROR(table->GetIndex(&index));
            for (const RangeTombstone& rt : index->range_tombstones) {
              if (rt.Contains(key)) {
                latest = std::max(latest, rt.seq);
              }
            }
          }
        }
        bool found = false;
        TableGetResult result;
        LETHE_RETURN_IF_ERROR(table->Get(key, file.get(), &stats_, &found,
                                         &result, /*fill_cache=*/false));
        if (found) {
          *seq = std::max(latest, result.seq);
          return Status::OK();
        }
      }
    }
  }
  *seq = latest;  // 0 when the key has never been written
  return Status::OK();
}

std::unique_ptr<Iterator> DBImpl::NewIterator(const ReadOptions& options) {
  // The sequence bound and the source pointers must be captured in one mu_
  // hold: LastSequence is published only after a group is fully applied, so
  // every entry at or below the bound is present in these sources, and the
  // scan observes exactly the state as of creation (or of the snapshot).
  ReadSnapshot snap;
  SequenceNumber bound;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap = GetReadSnapshotLocked();
    bound = options.snapshot != nullptr ? options.snapshot->sequence()
                                        : versions_->LastSequence();
  }
  Status setup_status;

  std::vector<std::unique_ptr<InternalIterator>> children;
  children.push_back(snap.mem->NewIterator());

  std::vector<RangeTombstone> rts;
  snap.mem->range_tombstones()->AppendTo(&rts);

  std::vector<std::shared_ptr<MemTable>> pinned;
  pinned.push_back(snap.mem);
  for (const auto& imm : snap.imm) {
    children.push_back(imm->NewIterator());
    imm->range_tombstones()->AppendTo(&rts);
    pinned.push_back(imm);
  }

  for (int level = 0; level < snap.version->num_levels(); level++) {
    for (const SortedRun& run : snap.version->levels()[level]) {
      children.push_back(std::make_unique<RunIterator>(
          versions_->table_cache(), run.files, options.fill_page_cache));
      for (const auto& file : run.files) {
        if (file->num_range_tombstones == 0) {
          continue;
        }
        // A failure here may not be swallowed: missing range tombstones
        // would silently resurrect deleted keys, so it poisons the
        // iterator instead (surfaced through status()).
        std::shared_ptr<SSTableReader> table;
        TableIndexHandle index;
        Status s = versions_->table_cache()->GetTable(*file, &table);
        if (s.ok()) {
          s = table->GetIndex(&index);
        }
        if (s.ok()) {
          rts.insert(rts.end(), index->range_tombstones.begin(),
                     index->range_tombstones.end());
        } else if (setup_status.ok()) {
          setup_status = s;
        }
      }
    }
  }

  return std::make_unique<DBIter>(
      std::move(pinned), std::move(snap.version),
      NewMergingIterator(std::move(children)), rts,
      options_.fragmented_range_tombstones, bound, &stats_,
      std::move(setup_status));
}

Status DBImpl::SecondaryRangeLookup(const ReadOptions& options,
                                    uint64_t delete_key_begin,
                                    uint64_t delete_key_end,
                                    std::vector<SecondaryHit>* hits) {
  hits->clear();
  if (delete_key_begin >= delete_key_end) {
    return Status::OK();
  }
  ReadSnapshot snap = GetReadSnapshot();

  // Phase 1: gather candidate sort keys via the delete-key fences. Pages
  // whose delete-key range misses [lo, hi) are never read — this is where
  // KiWi's weave pays off for h > 1.
  std::set<std::string> candidates;
  std::vector<std::shared_ptr<MemTable>> mems = snap.imm;
  mems.push_back(snap.mem);
  for (const auto& mem : mems) {
    auto it = mem->NewIterator();
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      const ParsedEntry& entry = it->entry();
      if (!entry.IsTombstone() && entry.delete_key >= delete_key_begin &&
          entry.delete_key < delete_key_end) {
        candidates.insert(entry.user_key.ToString());
      }
    }
  }
  for (const auto& [level, file] : snap.version->AllFiles()) {
    if (!file->OverlapsDeleteKeyRange(delete_key_begin, delete_key_end)) {
      continue;
    }
    std::shared_ptr<SSTableReader> table;
    LETHE_RETURN_IF_ERROR(versions_->table_cache()->GetTable(*file, &table));
    TableIndexHandle index;
    LETHE_RETURN_IF_ERROR(table->GetIndex(&index));
    for (uint32_t p = 0; p < index->pages.size(); p++) {
      if (file->IsPageDropped(p)) {
        continue;
      }
      const PageInfo& page = index->pages[p];
      if (page.min_delete_key >= delete_key_end ||
          page.max_delete_key < delete_key_begin) {
        continue;  // delete fences prune the read
      }
      PageHandle contents;
      bool from_cache = false;
      LETHE_RETURN_IF_ERROR(table->ReadPage(p, &contents,
                                            file->page_generation,
                                            &from_cache,
                                            options.fill_page_cache));
      if (!from_cache) {
        stats_.range_lookup_pages_read.fetch_add(1,
                                                 std::memory_order_relaxed);
      }
      for (const ParsedEntry& entry : contents->entries) {
        if (!entry.IsTombstone() && entry.delete_key >= delete_key_begin &&
            entry.delete_key < delete_key_end) {
          candidates.insert(entry.user_key.ToString());
        }
      }
    }
  }

  // Phase 2: verify each candidate against the primary read path — only
  // the *live* version of a key counts, and its delete key must itself
  // qualify (a candidate may be a superseded or deleted version).
  for (const std::string& key : candidates) {
    std::string value;
    uint64_t delete_key;
    Status s = GetWithDeleteKey(options, key, &value, &delete_key);
    if (s.IsNotFound()) {
      continue;
    }
    LETHE_RETURN_IF_ERROR(s);
    if (delete_key >= delete_key_begin && delete_key < delete_key_end) {
      hits->push_back({key, std::move(value), delete_key});
    }
  }
  return Status::OK();
}

std::vector<LevelSnapshot> DBImpl::GetLevelSnapshots() {
  std::shared_ptr<const Version> version = versions_->current();
  uint64_t now = options_.clock->NowMicros();
  std::vector<LevelSnapshot> result;
  for (int level = 0; level < version->num_levels(); level++) {
    LevelSnapshot snap;
    snap.level = level + 1;  // paper numbering: Level 0 is the buffer
    snap.num_runs = version->LevelRunCount(level);
    for (const SortedRun& run : version->levels()[level]) {
      for (const auto& file : run.files) {
        snap.num_files++;
        snap.num_entries += file->num_entries;
        snap.num_point_tombstones += file->num_point_tombstones;
        snap.num_range_tombstones += file->num_range_tombstones;
        snap.bytes += file->file_size;
        snap.oldest_tombstone_age_micros = std::max(
            snap.oldest_tombstone_age_micros, file->TombstoneAge(now));
      }
    }
    result.push_back(snap);
  }
  return result;
}

std::vector<TombstoneAgeSample> DBImpl::GetTombstoneAges() {
  std::shared_ptr<const Version> version = versions_->current();
  uint64_t now = options_.clock->NowMicros();
  std::vector<TombstoneAgeSample> result;
  for (const auto& [level, file] : version->AllFiles()) {
    if (!file->HasTombstones()) {
      continue;
    }
    TombstoneAgeSample sample;
    sample.level = level + 1;
    sample.age_micros = file->TombstoneAge(now);
    sample.num_point_tombstones = file->num_point_tombstones;
    result.push_back(sample);
  }
  return result;
}

uint64_t DBImpl::ApproximateEntryCount() const {
  ReadSnapshot snap = GetReadSnapshot();
  uint64_t count = snap.version->TotalLiveEntries() + snap.mem->num_entries();
  for (const auto& imm : snap.imm) {
    count += imm->num_entries();
  }
  return count;
}

Status DBImpl::ComputeSpaceAmplification(double* samp) {
  uint64_t total = ApproximateEntryCount();
  uint64_t unique = 0;
  auto it = NewIterator(ReadOptions());
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    unique++;
  }
  LETHE_RETURN_IF_ERROR(it->status());
  if (unique == 0) {
    *samp = total > 0 ? static_cast<double>(total) : 0.0;
    return Status::OK();
  }
  *samp = static_cast<double>(total - unique) / static_cast<double>(unique);
  return Status::OK();
}

Status DBImpl::TEST_VerifyTreeInvariants() {
  std::shared_ptr<const Version> version = versions_->current();
  for (int level = 0; level < version->num_levels(); level++) {
    const auto& runs = version->levels()[level];
    if (options_.compaction_style == CompactionStyle::kLeveling &&
        runs.size() > 1) {
      return Status::Corruption("leveling holds " +
                                std::to_string(runs.size()) +
                                " runs at level " + std::to_string(level));
    }
    for (const SortedRun& run : runs) {
      for (size_t i = 0; i < run.files.size(); i++) {
        const FileMeta& file = *run.files[i];
        if (Slice(file.smallest_key).compare(Slice(file.largest_key)) > 0) {
          return Status::Corruption("inverted key range in file " +
                                    std::to_string(file.file_number));
        }
        if (i > 0 && Slice(run.files[i - 1]->largest_key)
                             .compare(Slice(file.smallest_key)) > 0) {
          return Status::Corruption(
              "overlapping files within a run at level " +
              std::to_string(level));
        }
        if (!options_.env->FileExists(
                TableFileName(dbname_, file.file_number))) {
          return Status::Corruption("referenced table file missing: " +
                                    TableFileName(dbname_, file.file_number));
        }
      }
    }
  }
  // Unified-budget invariant: in strict mode the resident block charge plus
  // the write-buffer reservation must never exceed the budget. (Non-strict
  // caches may legitimately overflow while entries are pinned.)
  if (page_cache_ != nullptr && page_cache_->strict()) {
    const size_t capacity = page_cache_->capacity();
    const size_t charge = page_cache_->TotalCharge();
    const size_t reserved =
        std::min(page_cache_->ReservedBytes(), capacity);
    if (charge + reserved > capacity) {
      return Status::Corruption(
          "strict cache budget exceeded: charge " + std::to_string(charge) +
          " + reservation " + std::to_string(reserved) + " > capacity " +
          std::to_string(capacity));
    }
  }
  return Status::OK();
}


}  // namespace lethe
