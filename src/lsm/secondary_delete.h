#ifndef LETHE_LSM_SECONDARY_DELETE_H_
#define LETHE_LSM_SECONDARY_DELETE_H_

#include <cstdint>

#include "src/core/options.h"
#include "src/core/statistics.h"
#include "src/lsm/version.h"
#include "src/lsm/version_edit.h"
#include "src/lsm/version_set.h"

namespace lethe {

/// Executes a secondary range delete over delete keys [lo, hi) across every
/// file of `version` (§4.2.2). For each affected file:
///   - pages whose whole delete-key range falls inside [lo, hi) are *fully
///     dropped*: a metadata-only bitmap flip, no read, no write;
///   - boundary pages (0–1 per delete tile in the common case) are read,
///     filtered, and rewritten in place (*partial page drops*);
///   - a file whose live pages all vanish (and that carries no range
///     tombstones) is removed outright.
/// Appends the metadata replacements to `edit`; the caller applies it.
Status ExecuteSecondaryRangeDelete(const Options& resolved_options,
                                   VersionSet* versions, Statistics* stats,
                                   const Version& version, uint64_t lo,
                                   uint64_t hi, VersionEdit* edit);

}  // namespace lethe

#endif  // LETHE_LSM_SECONDARY_DELETE_H_
