#ifndef LETHE_LSM_VERSION_EDIT_H_
#define LETHE_LSM_VERSION_EDIT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/format/file_meta.h"
#include "src/util/status.h"

namespace lethe {

/// A delta between two versions of the tree, persisted as one MANIFEST
/// record. Removals are applied before additions, so "replace file 7's
/// metadata" (e.g. after a secondary range delete drops pages) is expressed
/// as remove(7) + add(7, new_meta).
struct VersionEdit {
  struct RemovedFile {
    int level = 0;
    uint64_t file_number = 0;
  };

  std::vector<RemovedFile> removed_files;
  std::vector<std::pair<int, FileMeta>> added_files;  // (disk level, meta)

  std::optional<uint64_t> next_file_number;
  std::optional<SequenceNumber> last_sequence;
  std::optional<uint64_t> wal_number;
  std::optional<uint64_t> next_run_id;

  /// Seq→time checkpoints appended at flushes: (first seq of the flushed
  /// batch, creation time of its memtable). FADE resolves a point
  /// tombstone's insertion time as the checkpoint time of the greatest
  /// checkpoint seq <= tombstone seq — a conservative (never-late) floor.
  std::vector<std::pair<SequenceNumber, uint64_t>> seq_time_checkpoints;

  void Clear() { *this = VersionEdit(); }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice input);
};

}  // namespace lethe

#endif  // LETHE_LSM_VERSION_EDIT_H_
