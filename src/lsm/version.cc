#include "src/lsm/version.h"

#include <algorithm>
#include <map>

#include "src/lsm/version_edit.h"

namespace lethe {

uint64_t SortedRun::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& file : files) {
    // Scale by live pages so full page drops reduce the level's accounted
    // size (the dropped pages are reclaimable).
    if (file->num_pages > 0) {
      total += file->file_size * file->live_page_count() / file->num_pages;
    } else {
      total += file->file_size;
    }
  }
  return total;
}

uint64_t SortedRun::TotalEntries() const {
  uint64_t total = 0;
  for (const auto& file : files) {
    total += file->num_entries;
  }
  return total;
}

int SortedRun::FindFile(const Slice& user_key) const {
  // Binary search the first file with largest_key >= user_key.
  int lo = 0, hi = static_cast<int>(files.size()) - 1, result = -1;
  while (lo <= hi) {
    int mid = lo + (hi - lo) / 2;
    if (Slice(files[mid]->largest_key).compare(user_key) >= 0) {
      result = mid;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  if (result < 0) {
    return -1;
  }
  if (Slice(files[result]->smallest_key).compare(user_key) > 0) {
    return -1;
  }
  return result;
}

int Version::DeepestNonEmptyLevel() const {
  for (int i = num_levels() - 1; i >= 0; i--) {
    for (const SortedRun& run : levels_[i]) {
      if (!run.files.empty()) {
        return i;
      }
    }
  }
  return -1;
}

bool Version::IsBottommost(int level) const {
  return DeepestNonEmptyLevel() <= level;
}

uint64_t Version::LevelBytes(int level) const {
  if (level >= num_levels()) {
    return 0;
  }
  uint64_t total = 0;
  for (const SortedRun& run : levels_[level]) {
    total += run.TotalBytes();
  }
  return total;
}

uint64_t Version::LevelLiveEntries(int level) const {
  if (level >= num_levels()) {
    return 0;
  }
  uint64_t total = 0;
  for (const SortedRun& run : levels_[level]) {
    total += run.TotalEntries();
  }
  return total;
}

int Version::LevelRunCount(int level) const {
  if (level >= num_levels()) {
    return 0;
  }
  return static_cast<int>(levels_[level].size());
}

uint64_t Version::TotalLiveEntries() const {
  uint64_t total = 0;
  for (int i = 0; i < num_levels(); i++) {
    total += LevelLiveEntries(i);
  }
  return total;
}

uint64_t Version::TotalFiles() const {
  uint64_t total = 0;
  for (const auto& level : levels_) {
    for (const SortedRun& run : level) {
      total += run.files.size();
    }
  }
  return total;
}

std::vector<std::shared_ptr<FileMeta>> Version::OverlappingFiles(
    int level, const Slice& begin, const Slice& end) const {
  std::vector<std::shared_ptr<FileMeta>> result;
  if (level >= num_levels()) {
    return result;
  }
  for (const SortedRun& run : levels_[level]) {
    for (const auto& file : run.files) {
      if (file->OverlapsKeyRange(begin, end)) {
        result.push_back(file);
      }
    }
  }
  return result;
}

std::vector<std::pair<int, std::shared_ptr<FileMeta>>> Version::AllFiles()
    const {
  std::vector<std::pair<int, std::shared_ptr<FileMeta>>> result;
  for (int i = 0; i < num_levels(); i++) {
    for (const SortedRun& run : levels_[i]) {
      for (const auto& file : run.files) {
        result.emplace_back(i, file);
      }
    }
  }
  return result;
}

std::shared_ptr<Version> Version::Apply(const Version* base,
                                        const VersionEdit& edit,
                                        Status* status) {
  *status = Status::OK();
  auto result = std::make_shared<Version>();

  // Start from the base structure, dropping removed files.
  int max_level = base != nullptr ? base->num_levels() - 1 : -1;
  for (const auto& [level, meta] : edit.added_files) {
    max_level = std::max(max_level, level);
  }
  result->levels_.resize(max_level + 1);

  auto is_removed = [&edit](int level, uint64_t number) {
    for (const auto& removed : edit.removed_files) {
      if (removed.level == level && removed.file_number == number) {
        return true;
      }
    }
    return false;
  };

  // (level, run_id) → files.
  std::map<std::pair<int, uint64_t>, std::vector<std::shared_ptr<FileMeta>>>
      grouped;
  if (base != nullptr) {
    for (int level = 0; level < base->num_levels(); level++) {
      for (const SortedRun& run : base->levels_[level]) {
        for (const auto& file : run.files) {
          if (!is_removed(level, file->file_number)) {
            grouped[{level, run.run_id}].push_back(file);
          }
        }
      }
    }
  }
  for (const auto& [level, meta] : edit.added_files) {
    grouped[{level, meta.run_id}].push_back(std::make_shared<FileMeta>(meta));
  }

  for (auto& [key, files] : grouped) {
    if (files.empty()) {
      continue;
    }
    std::sort(files.begin(), files.end(),
              [](const auto& a, const auto& b) {
                return Slice(a->smallest_key).compare(
                           Slice(b->smallest_key)) < 0;
              });
    // Sanity: files within a run must not overlap. Equal *boundaries* are
    // legal — a range tombstone's exclusive end extends a file's advertised
    // largest key, which may equal the next file's smallest — but two files
    // must never share a smallest key: the sort above would be ambiguous,
    // and point lookups walk a run's files in this order assuming each user
    // key lives in exactly one file (the merge loop guarantees it by never
    // cutting an output between two versions of a key).
    for (size_t i = 1; i < files.size(); i++) {
      if (Slice(files[i - 1]->largest_key)
              .compare(Slice(files[i]->smallest_key)) > 0 ||
          Slice(files[i - 1]->smallest_key)
              .compare(Slice(files[i]->smallest_key)) == 0) {
        *status = Status::Corruption(
            "overlapping files within a sorted run: level " +
            std::to_string(key.first) + " run " + std::to_string(key.second) +
            " file " + std::to_string(files[i - 1]->file_number) + " [" +
            files[i - 1]->smallest_key + ".." + files[i - 1]->largest_key +
            "] vs file " + std::to_string(files[i]->file_number) + " [" +
            files[i]->smallest_key + ".." + files[i]->largest_key + "]");
        return result;
      }
    }
    SortedRun run;
    run.run_id = key.second;
    run.files = std::move(files);
    result->levels_[key.first].push_back(std::move(run));
  }

  // Order runs within each level by run_id (creation order = recency order).
  for (auto& level : result->levels_) {
    std::sort(level.begin(), level.end(),
              [](const SortedRun& a, const SortedRun& b) {
                return a.run_id < b.run_id;
              });
  }
  return result;
}

}  // namespace lethe
