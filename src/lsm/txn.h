#ifndef LETHE_LSM_TXN_H_
#define LETHE_LSM_TXN_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/core/db.h"
#include "src/memtable/write_batch.h"

namespace lethe {

class DBImpl;

/// Optimistic concurrency control layered above the engine core, as the
/// paper's companions recommend (validation stays above the write path; no
/// transaction ids thread through the LSM itself):
///
///   - Begin pins a snapshot; every read resolves against it.
///   - Writes stage into a private WriteBatch, invisible to other readers,
///     with read-your-own-writes overlays for Get and NewIterator.
///   - Commit validates the tracked read/write keyset under the write
///     token: if any of those keys gained a committed version newer than
///     the snapshot, the transaction aborts with Status::Busy and nothing
///     is applied; otherwise the batch rides the normal leader/follower
///     group-commit path atomically.
///
/// Because validation and apply both happen while holding the write token,
/// commit order equals token order equals sequence order, and a replay of
/// committed transactions in commit_sequence() order is a serial history
/// equivalent to the concurrent execution (validated reads are still
/// current at the commit point).
///
/// Granularity and limits:
///   - Conflicts are tracked per point key. Keys yielded by a transaction
///     iterator are NOT added to the read set (no phantom protection);
///     call Get on keys whose stability the transaction depends on.
///   - RangeDelete cannot be staged (per-key validation cannot cover it).
///   - SecondaryRangeDelete is physically destructive and outside snapshot
///     isolation entirely (see DB::SecondaryRangeDelete).
///
/// Not thread-safe; one transaction belongs to one thread. The transaction
/// must be committed, rolled back, or destroyed before the DB closes.
class OptimisticTransaction {
 public:
  /// Begins a transaction on `db` (must be an engine instance created by
  /// DB::Open), pinning its snapshot now.
  explicit OptimisticTransaction(DB* db);

  /// Releases the snapshot if the transaction was never finished.
  ~OptimisticTransaction();

  OptimisticTransaction(const OptimisticTransaction&) = delete;
  OptimisticTransaction& operator=(const OptimisticTransaction&) = delete;

  /// Snapshot read with read-your-own-writes: staged Puts/Deletes of this
  /// transaction win over the snapshot. The key joins the validated read
  /// set. `options.snapshot` is ignored (the transaction's snapshot rules).
  Status Get(const ReadOptions& options, const Slice& key, std::string* value);

  /// Stages an insert/update. Staged writes join the validated keyset.
  Status Put(const Slice& key, uint64_t delete_key, const Slice& value);

  /// Stages a point delete.
  Status Delete(const Slice& key);

  /// Snapshot-bound scan overlaid with this transaction's staged writes:
  /// staged values replace committed ones, staged deletes hide them.
  /// Yielded keys do not join the read set (see the class comment).
  std::unique_ptr<Iterator> NewIterator(const ReadOptions& options);

  /// Validates and applies the staged batch. Returns Status::Busy on
  /// conflict (some read or written key has a committed version newer than
  /// the snapshot); the transaction is finished either way and cannot be
  /// reused — retry with a fresh transaction.
  Status Commit(const WriteOptions& options = WriteOptions());

  /// Discards the staged writes and releases the snapshot.
  Status Rollback();

  /// The pinned snapshot (valid until the transaction finishes).
  const Snapshot* snapshot() const { return snapshot_; }

  /// Last sequence of the committed batch (the transaction's position in
  /// the serial order). Valid only after a successful Commit; read-only
  /// commits get their validation-point sequence.
  SequenceNumber commit_sequence() const { return commit_seq_; }

 private:
  struct StagedValue {
    bool deleted = false;
    uint64_t delete_key = 0;
    std::string value;
  };

  class OverlayIterator;

  DBImpl* db_ = nullptr;       // null when `db` is not an engine instance
  const Snapshot* snapshot_ = nullptr;
  WriteBatch batch_;           // ops in staging order (replayed on commit)
  std::map<std::string, StagedValue> staged_;  // last write per key
  std::set<std::string> read_keys_;
  bool finished_ = false;
  SequenceNumber commit_seq_ = 0;
};

}  // namespace lethe

#endif  // LETHE_LSM_TXN_H_
