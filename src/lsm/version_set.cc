#include "src/lsm/version_set.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>

namespace lethe {

namespace {

std::string NumberedFileName(const std::string& dbname, uint64_t number,
                             const char* suffix) {
  char buf[64];
  snprintf(buf, sizeof(buf), "/%06" PRIu64 ".%s", number, suffix);
  return dbname + buf;
}

}  // namespace

std::string TableFileName(const std::string& dbname, uint64_t number) {
  return NumberedFileName(dbname, number, "sst");
}

std::string WalFileName(const std::string& dbname, uint64_t number) {
  return NumberedFileName(dbname, number, "wal");
}

std::string ManifestFileName(const std::string& dbname, uint64_t number) {
  char buf[64];
  snprintf(buf, sizeof(buf), "/MANIFEST-%06" PRIu64, number);
  return dbname + buf;
}

std::string CurrentFileName(const std::string& dbname) {
  return dbname + "/CURRENT";
}

Status TableCache::GetTable(const FileMeta& meta,
                            std::shared_ptr<SSTableReader>* table) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(meta.file_number);
    if (it != cache_.end()) {
      *table = it->second;
      return Status::OK();
    }
  }
  std::unique_ptr<RandomAccessFile> file;
  LETHE_RETURN_IF_ERROR(env_->NewRandomAccessFile(
      TableFileName(dbname_, meta.file_number), &file));
  std::unique_ptr<SSTableReader> reader;
  LETHE_RETURN_IF_ERROR(SSTableReader::Open(table_options_, std::move(file),
                                            meta.file_size, &reader,
                                            meta.file_number, page_cache_,
                                            cache_metadata_));
  std::shared_ptr<SSTableReader> shared(std::move(reader));
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_[meta.file_number] = shared;
  }
  *table = std::move(shared);
  return Status::OK();
}

void TableCache::Evict(uint64_t file_number) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.erase(file_number);
  }
  if (page_cache_ != nullptr) {
    page_cache_->EvictFile(file_number);
  }
}

VersionSet::VersionSet(const Options& resolved_options, std::string dbname,
                       PageCache* page_cache, Statistics* stats)
    : options_(resolved_options),
      dbname_(std::move(dbname)),
      table_cache_(resolved_options.env, resolved_options.table, dbname_,
                   page_cache,
                   resolved_options.cache_index_and_filter_blocks),
      stats_(stats) {
  if (resolved_options.file_number_origin > 0) {
    // Shard bands: every file this set allocates (tables, WALs, manifests)
    // numbers upward from the origin, so file-number-keyed state in a
    // cache shared across shards can never collide. Recovery max-merges
    // the persisted counter on top, keeping reopens inside the band.
    EnsureFileNumberPast(resolved_options.file_number_origin);
  }
}

Status VersionSet::Recover() {
  Env* env = options_.env;
  if (!env->FileExists(CurrentFileName(dbname_))) {
    if (!options_.create_if_missing) {
      return Status::NotFound("database does not exist: " + dbname_);
    }
    LETHE_RETURN_IF_ERROR(env->CreateDirIfMissing(dbname_));
    return CreateFresh();
  }

  std::string manifest_name;
  LETHE_RETURN_IF_ERROR(
      ReadFileToString(env, CurrentFileName(dbname_), &manifest_name));
  while (!manifest_name.empty() && manifest_name.back() == '\n') {
    manifest_name.pop_back();
  }

  Status s = LoadManifest(dbname_ + "/" + manifest_name);
  if (!s.ok() && !s.IsCorruption()) {
    // A transient failure (EIO opening or reading the file) is not damage:
    // falling back to an older snapshot here would silently roll the DB
    // back and let the orphan sweep destroy the newer tables over an error
    // a retry could clear. Surface it and let the caller retry Open.
    return s;
  }
  if (!s.ok() &&
      options_.wal_recovery_mode != WalRecoveryMode::kAbsoluteConsistency) {
    // The manifest CURRENT names is unreadable or damaged. Every snapshot
    // manifest is self-contained (one record describing the whole tree), so
    // an older intact one still yields a consistent — if stale — database.
    // Try them newest-first; newer snapshots supersede older ones.
    uint64_t failed = 0;
    sscanf(manifest_name.c_str(), "MANIFEST-%" SCNu64, &failed);
    std::vector<uint64_t> candidates;
    std::vector<std::string> children;
    if (env->GetChildren(dbname_, &children).ok()) {
      for (const std::string& child : children) {
        uint64_t number = 0;
        if (sscanf(child.c_str(), "MANIFEST-%" SCNu64, &number) == 1 &&
            number != failed) {
          candidates.push_back(number);
        }
      }
    }
    std::sort(candidates.rbegin(), candidates.rend());
    for (uint64_t number : candidates) {
      Status fallback = LoadManifest(ManifestFileName(dbname_, number));
      if (fallback.ok()) {
        if (stats_ != nullptr) {
          stats_->manifest_fallbacks.fetch_add(1, std::memory_order_relaxed);
        }
        // The recovered snapshot may predate tables the damaged manifest
        // referenced; the flag tells the recovery orphan sweep to
        // quarantine those instead of deleting acked data.
        recovered_via_fallback_ = true;
        s = Status::OK();
        break;
      }
      if (!fallback.IsCorruption()) {
        return fallback;  // transient: a retry may still read this snapshot
      }
    }
  }
  if (!s.ok()) {
    return Status::Corruption("no readable MANIFEST (" + s.ToString() +
                              "); run DB::Repair to rebuild one from the "
                              "table files");
  }
  // Start a fresh manifest holding one snapshot record, so the log does not
  // grow across restarts.
  return WriteSnapshotManifest();
}

Status VersionSet::LoadManifest(const std::string& path) {
  Env* env = options_.env;
  std::unique_ptr<SequentialFile> file;
  LETHE_RETURN_IF_ERROR(env->NewSequentialFile(path, &file));
  RecordLogReader reader(std::move(file));

  std::shared_ptr<const Version> version = std::make_shared<Version>();
  std::vector<std::pair<SequenceNumber, uint64_t>> seq_time;
  std::string record;
  Status read_status;
  size_t records = 0;
  while (reader.ReadRecord(&record, &read_status)) {
    VersionEdit edit;
    LETHE_RETURN_IF_ERROR(edit.DecodeFrom(Slice(record)));
    Status apply_status;
    version = Version::Apply(version.get(), edit, &apply_status);
    LETHE_RETURN_IF_ERROR(apply_status);
    ApplyCounters(edit);
    for (const auto& [seq, time] : edit.seq_time_checkpoints) {
      seq_time.emplace_back(seq, time);
    }
    records++;
  }
  LETHE_RETURN_IF_ERROR(read_status);
  if (records == 0) {
    // Every manifest opens with a snapshot record, so "no complete records"
    // means the file is damage masquerading as a torn tail. Installing the
    // empty tree it implies would let the recovery orphan sweep delete
    // every table file as unreferenced — refuse, and let the caller fall
    // back to an older manifest or DB::Repair.
    return Status::Corruption("manifest contains no complete records: " +
                              path);
  }
  // Counters only ever max-merge (monotonic, so a partially-applied failed
  // attempt stays safe), but the version and the checkpoint map are
  // installed atomically here, after the whole log parsed.
  std::sort(seq_time.begin(), seq_time.end());
  {
    std::lock_guard<std::mutex> lock(seq_time_mu_);
    seq_time_map_ = std::move(seq_time);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = version;
  }
  return Status::OK();
}

Status VersionSet::CreateFresh() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::make_shared<Version>();
  }
  return WriteSnapshotManifest();
}

Status VersionSet::WriteSnapshotManifest() {
  Env* env = options_.env;
  manifest_number_ = NewFileNumber();
  std::string name = ManifestFileName(dbname_, manifest_number_);
  std::unique_ptr<WritableFile> file;
  LETHE_RETURN_IF_ERROR(env->NewWritableFile(name, &file));
  manifest_ = std::make_unique<RecordLogWriter>(std::move(file),
                                                /*sync_on_write=*/false);

  VersionEdit snapshot;
  std::shared_ptr<const Version> version = current();
  for (int level = 0; level < version->num_levels(); level++) {
    for (const SortedRun& run : version->levels()[level]) {
      for (const auto& meta : run.files) {
        snapshot.added_files.emplace_back(level, *meta);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(seq_time_mu_);
    snapshot.seq_time_checkpoints = seq_time_map_;
  }
  snapshot.next_file_number = next_file_number_.load();
  snapshot.last_sequence = last_sequence_.load();
  snapshot.wal_number = wal_number_;
  snapshot.next_run_id = next_run_id_.load();

  std::string payload;
  snapshot.EncodeTo(&payload);
  LETHE_RETURN_IF_ERROR(manifest_->AddRecord(payload));
  LETHE_RETURN_IF_ERROR(manifest_->Sync());

  // Point CURRENT at the new manifest via write + rename.
  std::string tmp = dbname_ + "/CURRENT.tmp";
  char buf[64];
  snprintf(buf, sizeof(buf), "MANIFEST-%06" PRIu64 "\n", manifest_number_);
  LETHE_RETURN_IF_ERROR(WriteStringToFile(env, buf, tmp));
  return env->RenameFile(tmp, CurrentFileName(dbname_));
}

void VersionSet::ApplyCounters(const VersionEdit& edit) {
  // Recovery-time only (single-threaded): plain max-merge into the atomics.
  if (edit.next_file_number) {
    next_file_number_.store(std::max(next_file_number_.load(),
                                     *edit.next_file_number));
  }
  if (edit.last_sequence) {
    last_sequence_.store(std::max(last_sequence_.load(), *edit.last_sequence));
  }
  if (edit.wal_number) {
    wal_number_ = *edit.wal_number;
  }
  if (edit.next_run_id) {
    next_run_id_.store(std::max(next_run_id_.load(), *edit.next_run_id));
  }
}

void VersionSet::AddSeqTimeCheckpoint(SequenceNumber seq, uint64_t time,
                                      VersionEdit* edit) {
  {
    std::lock_guard<std::mutex> lock(seq_time_mu_);
    seq_time_map_.emplace_back(seq, time);
    std::sort(seq_time_map_.begin(), seq_time_map_.end());
  }
  edit->seq_time_checkpoints.emplace_back(seq, time);
}

uint64_t VersionSet::TimeOfSeq(SequenceNumber seq) const {
  // Greatest checkpoint with checkpoint.seq <= seq. Locked: concurrent
  // merges resolve tombstone times while a flush inserts a checkpoint.
  std::lock_guard<std::mutex> lock(seq_time_mu_);
  auto it = std::upper_bound(
      seq_time_map_.begin(), seq_time_map_.end(),
      std::make_pair(seq, UINT64_MAX));
  if (it == seq_time_map_.begin()) {
    return 0;  // before the first checkpoint: oldest possible (conservative)
  }
  return std::prev(it)->second;
}

void JobFootprint::CoverOutput(const Slice& begin, const Slice& end) {
  if (!has_output_span || begin.compare(Slice(output_begin)) < 0) {
    output_begin.assign(begin.data(), begin.size());
  }
  if (!has_output_span || end.compare(Slice(output_end)) > 0) {
    output_end.assign(end.data(), end.size());
  }
  has_output_span = true;
}

void JobFootprint::AddInput(const FileMeta& file) {
  input_files.push_back(file.file_number);
  CoverOutput(Slice(file.smallest_key), Slice(file.largest_key));
}

uint64_t VersionSet::RegisterInFlightJob(const JobFootprint& footprint) {
  uint64_t id = next_job_id_++;
  for (uint64_t file : footprint.input_files) {
    inflight_files_.insert(file);
  }
  inflight_jobs_.emplace(id, footprint);
  return id;
}

void VersionSet::UnregisterInFlightJob(uint64_t job_id) {
  auto it = inflight_jobs_.find(job_id);
  if (it == inflight_jobs_.end()) {
    return;
  }
  for (uint64_t file : it->second.input_files) {
    inflight_files_.erase(file);
  }
  inflight_jobs_.erase(it);
}

bool VersionSet::ConflictsWithInFlight(const JobFootprint& footprint) const {
  if (inflight_jobs_.empty()) {
    return false;
  }
  if (footprint.exclusive) {
    return true;  // exclusive jobs demand an empty registry
  }
  for (const auto& [id, other] : inflight_jobs_) {
    if (other.exclusive) {
      return true;
    }
    if (footprint.is_flush && other.is_flush) {
      return true;  // flushes are ordered: oldest memtable first
    }
    if (footprint.output_level >= 0 &&
        footprint.output_level == other.output_level &&
        Slice(footprint.output_begin).compare(Slice(other.output_end)) <= 0 &&
        Slice(other.output_begin).compare(Slice(footprint.output_end)) <= 0) {
      return true;  // overlapping outputs into one level break the run
    }
  }
  for (uint64_t file : footprint.input_files) {
    if (inflight_files_.count(file) > 0) {
      return true;  // the input is being consumed by another merge
    }
  }
  return false;
}

Status VersionSet::LogAndApply(VersionEdit* edit) {
  edit->next_file_number = next_file_number_.load();
  edit->last_sequence = last_sequence_.load();
  edit->next_run_id = next_run_id_.load();
  if (!edit->wal_number) {
    edit->wal_number = wal_number_;
  } else {
    wal_number_ = *edit->wal_number;
  }

  std::string payload;
  edit->EncodeTo(&payload);
  LETHE_RETURN_IF_ERROR(manifest_->AddRecord(payload));

  Status apply_status;
  std::shared_ptr<const Version> base = current();
  std::shared_ptr<const Version> next =
      Version::Apply(base.get(), *edit, &apply_status);
  LETHE_RETURN_IF_ERROR(apply_status);
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = next;
  }

  // Retire table files that were removed and not re-added (re-adding the
  // same number replaces metadata after a secondary range delete). Physical
  // deletion is deferred: a concurrent scan pinning `base` (or an older
  // snapshot) may open these files lazily, so they park in the graveyard
  // until no retired version references them.
  std::set<uint64_t> readded;
  for (const auto& [level, meta] : edit->added_files) {
    readded.insert(meta.file_number);
  }
  for (const auto& removed : edit->removed_files) {
    if (readded.count(removed.file_number)) {
      continue;
    }
    table_cache_.Evict(removed.file_number);
    graveyard_.insert(removed.file_number);
  }
  retired_versions_.emplace_back(base);
  SweepGraveyardLocked();
  return Status::OK();
}

void VersionSet::SweepGraveyardLocked() {
  // Prune released snapshots; an alive one stays retired even while the
  // graveyard is empty — a later edit may remove files it references.
  // Careful with the compaction step: self-move-assignment of a weak_ptr
  // empties it (libstdc++ releases and then nulls the control block), so an
  // element that stays at its index must be left untouched.
  std::set<uint64_t> pinned;
  size_t alive = 0;
  for (size_t i = 0; i < retired_versions_.size(); i++) {
    std::shared_ptr<const Version> version = retired_versions_[i].lock();
    if (version == nullptr) {
      continue;  // snapshot released: no longer pins anything
    }
    if (alive != i) {
      retired_versions_[alive] = std::move(retired_versions_[i]);
    }
    alive++;
    if (graveyard_.empty()) {
      continue;  // nothing to reap; pruning is all this pass does
    }
    for (const auto& [level, file] : version->AllFiles()) {
      pinned.insert(file->file_number);
    }
  }
  retired_versions_.resize(alive);
  for (auto it = graveyard_.begin(); it != graveyard_.end();) {
    if (pinned.count(*it) == 0) {
      options_.env->RemoveFile(TableFileName(dbname_, *it)).ok();
      it = graveyard_.erase(it);
    } else {
      ++it;
    }
  }
}

void VersionSet::SweepAllObsoleteFiles() {
  for (uint64_t number : graveyard_) {
    options_.env->RemoveFile(TableFileName(dbname_, number)).ok();
  }
  graveyard_.clear();
  retired_versions_.clear();
}

}  // namespace lethe
