#include "src/lsm/compaction.h"

#include <algorithm>

#include "src/format/sstable_builder.h"

namespace lethe {

Status CollectFileInputs(VersionSet* versions,
                         const std::vector<std::shared_ptr<FileMeta>>& files,
                         std::vector<std::unique_ptr<InternalIterator>>* iters,
                         std::vector<RangeTombstone>* rts,
                         uint64_t* total_bytes) {
  for (const auto& meta : files) {
    std::shared_ptr<SSTableReader> table;
    LETHE_RETURN_IF_ERROR(versions->table_cache()->GetTable(*meta, &table));
    // The iterator must keep the reader alive; wrap it.
    class OwningIterator final : public InternalIterator {
     public:
      // fill_cache=false: a merge streams each input page exactly once and
      // then deletes the file — inserting those decodes would churn the
      // LRU against the pages point lookups are actually hot on.
      OwningIterator(std::shared_ptr<SSTableReader> table,
                     std::shared_ptr<FileMeta> meta)
          : table_(std::move(table)),
            meta_(std::move(meta)),
            iter_(table_->NewIterator(meta_.get(), /*fill_cache=*/false)) {}
      bool Valid() const override { return iter_->Valid(); }
      void SeekToFirst() override { iter_->SeekToFirst(); }
      void Seek(const Slice& target) override { iter_->Seek(target); }
      void Next() override { iter_->Next(); }
      const ParsedEntry& entry() const override { return iter_->entry(); }
      Status status() const override { return iter_->status(); }

     private:
      std::shared_ptr<SSTableReader> table_;
      std::shared_ptr<FileMeta> meta_;
      std::unique_ptr<InternalIterator> iter_;
    };
    iters->push_back(std::make_unique<OwningIterator>(table, meta));
    if (meta->num_range_tombstones > 0) {
      TableIndexHandle index;
      LETHE_RETURN_IF_ERROR(table->GetIndex(&index));
      for (const RangeTombstone& rt : index->range_tombstones) {
        rts->push_back(rt);
      }
    }
    if (total_bytes != nullptr) {
      *total_bytes += meta->file_size;
    }
  }
  return Status::OK();
}

std::vector<RangeTombstone> ClipRangeTombstones(
    const std::vector<RangeTombstone>& rts,
    const std::optional<std::string>& begin,
    const std::optional<std::string>& end) {
  std::vector<RangeTombstone> clipped;
  for (const RangeTombstone& rt : rts) {
    RangeTombstone piece = rt;
    if (begin && Slice(*begin).compare(Slice(piece.begin_key)) > 0) {
      piece.begin_key = *begin;
    }
    if (end && Slice(*end).compare(Slice(piece.end_key)) < 0) {
      piece.end_key = *end;
    }
    if (Slice(piece.begin_key).compare(Slice(piece.end_key)) < 0) {
      clipped.push_back(std::move(piece));
    }
  }
  return clipped;
}

Status MergeExecutor::OpenOutput(std::unique_ptr<Output>* output,
                                 std::optional<std::string> window_begin) {
  auto out = std::make_unique<Output>();
  out->file_number = versions_->NewFileNumber();
  LETHE_RETURN_IF_ERROR(options_.env->NewWritableFile(
      TableFileName(versions_->dbname(), out->file_number), &out->file));
  out->builder =
      std::make_unique<SSTableBuilder>(options_.table, out->file.get());
  out->window_begin = std::move(window_begin);
  *output = std::move(out);
  return Status::OK();
}

Status MergeExecutor::FinishOutput(Output* output,
                                   const std::vector<RangeTombstone>& rts,
                                   std::optional<std::string> window_end,
                                   const MergeConfig& config,
                                   VersionEdit* edit) {
  // Clip each surviving range tombstone to this output's window so the set
  // of output files covers exactly the union of input tombstone ranges. At
  // the bottommost level tombstones are normally persistent (not written),
  // but one pinned by a live snapshot still has versions to hide and must
  // be carried forward until the snapshot is released.
  const SequenceNumber oldest_snapshot = config.snapshots.empty()
                                             ? kMaxSequenceNumber
                                             : config.snapshots.front();
  std::string min_piece_begin, max_piece_end;
  bool has_piece = false;
  SequenceNumber min_written_rt_seq = kMaxSequenceNumber;
  {
    for (const RangeTombstone& rt : rts) {
      if (config.bottommost && rt.seq <= oldest_snapshot) {
        continue;  // persistent: nothing below the last level to invalidate
      }
      std::string begin = rt.begin_key;
      if (output->window_begin &&
          Slice(*output->window_begin).compare(Slice(begin)) > 0) {
        begin = *output->window_begin;
      }
      std::string end = rt.end_key;
      if (window_end && Slice(*window_end).compare(Slice(end)) < 0) {
        end = *window_end;
      }
      if (Slice(begin).compare(Slice(end)) >= 0) {
        continue;  // empty piece
      }
      RangeTombstone piece = rt;
      piece.begin_key = begin;
      piece.end_key = end;
      output->builder->AddRangeTombstone(piece);
      if (!has_piece || Slice(begin).compare(Slice(min_piece_begin)) < 0) {
        min_piece_begin = begin;
      }
      if (!has_piece || Slice(end).compare(Slice(max_piece_end)) > 0) {
        max_piece_end = end;
      }
      has_piece = true;
      min_written_rt_seq = std::min(min_written_rt_seq, rt.seq);
    }
  }

  TableProperties props;
  LETHE_RETURN_IF_ERROR(output->builder->Finish(&props));
  LETHE_RETURN_IF_ERROR(output->file->Sync());
  LETHE_RETURN_IF_ERROR(output->file->Close());

  if (props.num_entries == 0 && props.num_range_tombstones == 0) {
    // Nothing survived into this output; drop the empty file.
    options_.env
        ->RemoveFile(TableFileName(versions_->dbname(), output->file_number))
        .ok();
    return Status::OK();
  }

  FileMeta meta;
  meta.file_number = output->file_number;
  meta.file_size = props.file_size;
  meta.run_id = config.output_run_id;
  meta.num_entries = props.num_entries;
  meta.num_point_tombstones = props.num_point_tombstones;
  meta.num_range_tombstones = props.num_range_tombstones;
  meta.smallest_key = props.smallest_key;
  meta.largest_key = props.largest_key;
  meta.min_delete_key = props.min_delete_key;
  meta.max_delete_key = props.max_delete_key;
  meta.smallest_seq = props.smallest_seq;
  meta.largest_seq = props.largest_seq;
  meta.num_pages = props.num_pages;

  // Extend the file's advertised key range over its range-tombstone pieces
  // so overlap queries and lookups route through this file (the exclusive
  // piece end becomes an inclusive bound — conservative).
  if (has_piece) {
    if (props.num_entries == 0 ||
        Slice(min_piece_begin).compare(Slice(meta.smallest_key)) < 0) {
      meta.smallest_key = min_piece_begin;
    }
    if (props.num_entries == 0 ||
        Slice(max_piece_end).compare(Slice(meta.largest_key)) > 0) {
      meta.largest_key = max_piece_end;
    }
  }

  // Resolve the oldest tombstone's insertion time: point tombstones via the
  // seq→time checkpoint map (conservative floor), range tombstones exactly.
  uint64_t oldest = kNoTombstoneTime;
  if (props.num_point_tombstones > 0) {
    oldest = versions_->TimeOfSeq(props.oldest_point_tombstone_seq);
  }
  if (props.num_range_tombstones > 0) {
    oldest = std::min(oldest, props.oldest_range_tombstone_time);
  }
  meta.oldest_tombstone_time = oldest;
  if (meta.HasTombstones()) {
    SequenceNumber oldest_seq = min_written_rt_seq;
    if (props.num_point_tombstones > 0) {
      oldest_seq = std::min(oldest_seq, props.oldest_point_tombstone_seq);
    }
    meta.oldest_tombstone_seq = oldest_seq;
  }

  if (config.is_flush) {
    stats_->flush_bytes_written.fetch_add(props.file_size,
                                          std::memory_order_relaxed);
  } else {
    stats_->compaction_bytes_written.fetch_add(props.file_size,
                                               std::memory_order_relaxed);
  }
  if (meta.HasTombstones()) {
    stats_->tombstones_written.fetch_add(meta.num_point_tombstones,
                                         std::memory_order_relaxed);
  }

  edit->added_files.emplace_back(config.output_level, std::move(meta));
  return Status::OK();
}

Status MergeExecutor::Run(
    InternalIterator* input,
    const std::vector<RangeTombstone>& input_range_tombstones,
    const MergeConfig& config, VersionEdit* edit) {
  if (!config.count_merge_stats) {
    // Secondary partition of a fanned-out merge: the primary already
    // counted the merge itself.
  } else if (config.is_flush) {
    stats_->flushes.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_->compactions.fetch_add(1, std::memory_order_relaxed);
    if (config.trigger == CompactionPick::Trigger::kTtlExpiry) {
      stats_->compactions_ttl_triggered.fetch_add(1,
                                                  std::memory_order_relaxed);
    } else {
      stats_->compactions_saturation_triggered.fetch_add(
          1, std::memory_order_relaxed);
    }
    stats_->compaction_bytes_read.fetch_add(config.input_bytes,
                                            std::memory_order_relaxed);
  }

  // The drop rule below probes MinCoverSeqAbove once per input entry; the
  // fragmented index makes that O(log F) against tombstone-heavy inputs.
  // Both structures answer bit-identically (the MVCC nearest-cover rule
  // depends on that), so the knob only selects probe cost.
  RangeTombstoneSet rt_set;
  FragmentedRangeTombstoneList frag_rts;
  const bool use_frag = options_.fragmented_range_tombstones;
  if (use_frag) {
    frag_rts = FragmentedRangeTombstoneList(input_range_tombstones);
  } else {
    rt_set.AddAll(input_range_tombstones);
  }
  auto min_cover_seq_above = [&](const Slice& user_key, SequenceNumber seq) {
    return use_frag ? frag_rts.MinCoverSeqAbove(user_key, seq)
                    : rt_set.MinCoverSeqAbove(user_key, seq);
  };

  // Snapshot stripes: two sequences are in the same stripe when no pinned
  // snapshot separates them (no S with lo <= S < hi), in which case no
  // reader can ever see the older one without the newer one also applying.
  const std::vector<SequenceNumber>& snapshots = config.snapshots;
  const SequenceNumber oldest_snapshot =
      snapshots.empty() ? kMaxSequenceNumber : snapshots.front();
  auto same_stripe = [&snapshots](SequenceNumber a, SequenceNumber b) {
    if (a > b) {
      std::swap(a, b);
    }
    auto it = std::lower_bound(snapshots.begin(), snapshots.end(), a);
    return it == snapshots.end() || *it >= b;
  };

  std::unique_ptr<Output> current;
  std::unique_ptr<Output> pending;  // awaits its window-end boundary

  std::string last_user_key;
  bool has_last_key = false;
  SequenceNumber last_version_seq = 0;
  uint64_t entries_in = 0, entries_out = 0;
  uint64_t invalid_purged = 0, tombstones_dropped = 0;

  if (config.partition_begin) {
    input->Seek(Slice(*config.partition_begin));
  } else {
    input->SeekToFirst();
  }
  for (; input->Valid(); input->Next()) {
    const ParsedEntry& entry = input->entry();
    if (config.partition_end &&
        entry.user_key.compare(Slice(*config.partition_end)) >= 0) {
      break;  // the next partition owns this key onward
    }
    if (config.abort != nullptr && (entries_in & 0xFF) == 0 &&
        config.abort->load(std::memory_order_relaxed)) {
      return Status::IOError("subcompaction aborted by sibling failure");
    }
    entries_in++;

    bool drop = false;
    if (has_last_key && entry.user_key == Slice(last_user_key)) {
      // Older version of a key we already emitted or decided about. It is
      // obsolete unless a pinned snapshot separates it from that newer
      // version — such a snapshot sees this version and not the newer one.
      if (same_stripe(entry.seq, last_version_seq)) {
        drop = true;
        invalid_purged++;
      }
    } else {
      last_user_key = entry.user_key.ToString();
      has_last_key = true;
    }
    last_version_seq = entry.seq;
    if (!drop) {
      // The *nearest* covering tombstone above the version decides: if no
      // pinned snapshot separates them, every snapshot that could see the
      // version sees that delete instead, so the version is dead even when
      // a still-newer tombstone sits on the far side of a snapshot. (Using
      // the max cover seq here would disagree with FinishOutput's
      // rt-persistence rule and resurrect the version once the nearer
      // tombstone is retired at the bottommost level.)
      const SequenceNumber cover_seq =
          min_cover_seq_above(entry.user_key, entry.seq);
      if (cover_seq != 0 && same_stripe(entry.seq, cover_seq)) {
        // Covered by a newer range tombstone no snapshot can see past.
        drop = true;
        invalid_purged++;
        if (entry.IsTombstone()) {
          tombstones_dropped++;  // superseded by a newer range tombstone
        }
      } else if (entry.IsTombstone() && config.bottommost &&
                 entry.seq <= oldest_snapshot) {
        // The tombstone reaches the last level and sits in the oldest
        // stripe (every older version of the key is dropped with it): the
        // delete is persistent.
        drop = true;
        tombstones_dropped++;
      }
    }
    if (drop) {
      continue;
    }

    // Cut the output once it is full — but never between two versions of
    // the same user key. A run's point-lookup routing (SortedRun::FindFile)
    // probes exactly one file per key, so a version chain straddling a file
    // boundary would hide its newer versions from reads; and a tail output
    // holding only that key would tie another file's smallest key, making
    // the run's sort order — and its non-overlap invariant — ambiguous.
    // Chains longer than one entry exist only under pinned snapshots, so
    // without snapshots the cut lands exactly where it always did.
    if (current != nullptr &&
        current->builder->EstimatedSize() >= options_.target_file_bytes &&
        entry.user_key != Slice(current->last_key)) {
      pending = std::move(current);
    }
    if (current == nullptr) {
      std::optional<std::string> window_begin;
      if (pending != nullptr) {
        // The first key of this new output closes the previous window.
        window_begin = entry.user_key.ToString();
        Output* done = pending.get();
        LETHE_RETURN_IF_ERROR(
            FinishOutput(done, input_range_tombstones, window_begin, config,
                         edit));
        pending.reset();
      }
      LETHE_RETURN_IF_ERROR(OpenOutput(&current, window_begin));
      current->first_key = entry.user_key.ToString();
    }
    current->builder->Add(entry);
    current->last_key = entry.user_key.ToString();
    current->has_entries = true;
    entries_out++;
  }
  LETHE_RETURN_IF_ERROR(input->status());

  if (current != nullptr) {
    LETHE_RETURN_IF_ERROR(FinishOutput(current.get(), input_range_tombstones,
                                       std::nullopt, config, edit));
  } else if (pending != nullptr) {
    LETHE_RETURN_IF_ERROR(FinishOutput(pending.get(), input_range_tombstones,
                                       std::nullopt, config, edit));
  } else if (!input_range_tombstones.empty()) {
    // No data survived but range tombstones must be carried forward in a
    // tombstone-only file (at bottommost, only when a snapshot pins some).
    bool carry = !config.bottommost;
    for (size_t i = 0; !carry && i < input_range_tombstones.size(); i++) {
      carry = input_range_tombstones[i].seq > oldest_snapshot;
    }
    if (carry) {
      std::unique_ptr<Output> rt_only;
      LETHE_RETURN_IF_ERROR(OpenOutput(&rt_only, std::nullopt));
      LETHE_RETURN_IF_ERROR(FinishOutput(rt_only.get(), input_range_tombstones,
                                         std::nullopt, config, edit));
    }
  }

  if (config.bottommost && config.count_merge_stats) {
    // Range tombstones that reached the last level unpinned were not
    // persisted (skipped in FinishOutput); count them as persisted deletes
    // — once per logical merge, not once per partition piece.
    uint64_t dropped;
    if (config.dropped_range_tombstones != UINT64_MAX) {
      dropped = config.dropped_range_tombstones;
    } else {
      dropped = 0;
      for (const RangeTombstone& rt : input_range_tombstones) {
        if (rt.seq <= oldest_snapshot) {
          dropped++;
        }
      }
    }
    stats_->tombstones_dropped.fetch_add(dropped, std::memory_order_relaxed);
  }
  stats_->compaction_entries_in.fetch_add(entries_in,
                                          std::memory_order_relaxed);
  stats_->compaction_entries_out.fetch_add(entries_out,
                                           std::memory_order_relaxed);
  stats_->invalid_entries_purged.fetch_add(invalid_purged,
                                           std::memory_order_relaxed);
  stats_->tombstones_dropped.fetch_add(tombstones_dropped,
                                       std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace lethe
