#ifndef LETHE_LSM_ERROR_HANDLER_H_
#define LETHE_LSM_ERROR_HANDLER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <random>
#include <string>
#include <thread>

#include "src/core/statistics.h"
#include "src/util/clock.h"
#include "src/util/status.h"

namespace lethe {

/// Severity classification for a failed background operation. The class
/// decides which health state the DB falls to and whether automatic
/// recovery is attempted.
enum class ErrorClass : int {
  kTransient = 0,   // EIO-style failures: retry with backoff
  kNoSpace = 1,     // ENOSPC: retry with backoff (space may free up)
  kCorruption = 2,  // checksum/decode damage: never retried, read-only
  kFatal = 3,       // everything else: read-only, sticky
};

/// DB health state machine:
///
///            retryable error                 retries exhausted
///   kHealthy ───────────────▶ kDegraded ───────────────────────▶ kReadOnly
///      ▲                         │   ▲                               │
///      │        probe succeeds   │   │ probe fails (backoff+jitter)  │
///      └─────────────────────────┴───┘          probe succeeds       │
///      └──────────────────────────────────────────────────────────────
///
///   corruption error  ─▶ kReadOnly (sticky: no probing)
///   unclassifiable    ─▶ kFatal    (sticky)
///
/// kDegraded: writes are still accepted (the WAL and memtable are not the
/// failing component) until ordinary backpressure — the immutable-memtable
/// cap — stalls them; background scheduling is suspended. The state is
/// bounded: it resolves to kHealthy (probe + job success) or kReadOnly
/// (retry budget drained) in bounded attempts. kReadOnly: writes are
/// rejected with Status::IOError; reads, iterators, and snapshots keep
/// serving from the installed version. Retryable read-only keeps probing
/// at the max backoff so a cleared fault still heals the DB. kFatal: as
/// kReadOnly but never probed.
enum class DBHealth : int {
  kHealthy = 0,
  kDegraded = 1,
  kReadOnly = 2,
  kFatal = 3,
};

/// Which background activity reported the error — for messages and tests.
enum class BackgroundJobKind : int {
  kFlush = 0,
  kCompaction = 1,
  kWalWrite = 2,
  kManifestWrite = 3,
  kSecondaryDelete = 4,
};

const char* ErrorClassName(ErrorClass c);
const char* DBHealthName(DBHealth h);
const char* BackgroundJobKindName(BackgroundJobKind k);

/// Central sink for background-job failures, owned by DBImpl. Every failed
/// flush, merge, subcompaction partition, SRD, WAL group append, or manifest
/// commit reports here; the handler classifies the error, drives the DBHealth
/// state machine, and (for retryable classes) runs a recovery thread that
/// probes the storage with exponential backoff + jitter and invokes the
/// owner's resume callback once a probe write succeeds.
///
/// Locking: the handler has its own mutex and NEVER invokes a callback while
/// holding it. DBImpl's callbacks take db mu_ themselves, so the only legal
/// lock order is db mu_ → (nothing): ReportError is called with db mu_ held
/// but does all callback work asynchronously on the recovery thread.
class ErrorHandler {
 public:
  struct RetryPolicy {
    int max_retries = 8;
    uint64_t base_backoff_micros = 1000;
    uint64_t max_backoff_micros = 1000000;
    bool auto_recovery = true;
    uint64_t seed = 0;  // jitter RNG
  };

  /// ProbeFn: issued off-lock by the recovery thread; returns OK when the
  /// storage accepts a small write+sync again. ResumeFn: invoked (off the
  /// handler lock) after a successful probe; the owner clears its bg_error,
  /// re-arms scheduling, re-stakes reservations, and wakes stalled writers.
  /// NotifyFn: invoked on every health-state change (including entry into
  /// degraded/read-only) so stalled writers re-evaluate their wait.
  using ProbeFn = std::function<Status()>;
  using ResumeFn = std::function<void()>;
  using NotifyFn = std::function<void()>;

  ErrorHandler(const RetryPolicy& policy, Clock* clock, Statistics* stats,
               ProbeFn probe, ResumeFn resume, NotifyFn notify);
  ~ErrorHandler();

  ErrorHandler(const ErrorHandler&) = delete;
  ErrorHandler& operator=(const ErrorHandler&) = delete;

  /// Maps a Status to its severity class. OK is not a valid input.
  static ErrorClass Classify(const Status& s);

  /// Reports one failed background operation. Drives the state machine and,
  /// for retryable classes with auto_recovery, (lazily) starts the recovery
  /// thread. Each retryable report consumes one attempt of the retry budget
  /// — a probe write alone cannot prove the failing component healed (it
  /// touches a scratch file, not the job's own path), so a job that keeps
  /// failing across probe-driven resumes still escalates to kReadOnly once
  /// the budget drains. Safe to call with the owner's mutex held: no
  /// callbacks run synchronously. Returns the health state entered.
  DBHealth ReportError(BackgroundJobKind kind, const Status& s);

  /// Reports a background job completing successfully: refills the retry
  /// budget. Only real job success resets it — probe success does not.
  /// Safe to call with the owner's mutex held.
  void ReportSuccess();

  /// Current health state.
  DBHealth health() const {
    std::lock_guard<std::mutex> lock(mu_);
    return health_;
  }

  /// The first error that moved the DB out of kHealthy since the last
  /// recovery (OK when healthy).
  Status cause() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cause_;
  }

  /// Joins the recovery thread. Must be called before the owner's resources
  /// (env, version set) are torn down; further ReportError calls after
  /// Shutdown record the error but never probe.
  void Shutdown();

  /// Test hook: blocks until the recovery thread has exited its loop (i.e.
  /// either recovered to kHealthy or gone sticky). Returns current health.
  DBHealth TEST_WaitForQuiescent();

 private:
  void RecoveryLoop();
  /// Accumulates time_in_degraded_micros up to `now` (mu_ held).
  void AccumulateDegradedLocked(uint64_t now_micros);

  const RetryPolicy policy_;
  Clock* const clock_;
  Statistics* const stats_;
  const ProbeFn probe_;
  const ResumeFn resume_;
  const NotifyFn notify_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  DBHealth health_ = DBHealth::kHealthy;
  Status cause_;
  uint64_t degraded_since_micros_ = 0;  // valid when health_ != kHealthy
  bool sticky_ = false;  // corruption/fatal reported: never probe again
  bool recovery_running_ = false;       // recovery thread active
  bool shutdown_ = false;
  uint64_t epoch_ = 0;  // bumped on every new error report; wakes the loop
  // Retry attempts consumed since the last successful background job (each
  // retryable report and each failed probe is one); drives the backoff
  // schedule and the escalation to kReadOnly. Persists across recovery
  // thread incarnations so probe-driven resume churn cannot reset it.
  int attempt_ = 0;
  std::mt19937_64 jitter_rng_;  // guarded by mu_
  std::thread recovery_thread_;  // guarded by mu_ (join in Shutdown/dtor)
};

}  // namespace lethe

#endif  // LETHE_LSM_ERROR_HANDLER_H_
