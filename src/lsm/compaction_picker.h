#ifndef LETHE_LSM_COMPACTION_PICKER_H_
#define LETHE_LSM_COMPACTION_PICKER_H_

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "src/core/options.h"
#include "src/lsm/version.h"
#include "src/lsm/version_set.h"

namespace lethe {

/// What the picker decided to compact and why. Under leveling `inputs` holds
/// one file from `level`; under tiering it holds every file of the level
/// (all runs merge together).
struct CompactionPick {
  enum class Trigger { kNone, kSaturation, kTtlExpiry };

  Trigger trigger = Trigger::kNone;
  int level = -1;
  std::vector<std::shared_ptr<FileMeta>> inputs;

  bool valid() const { return trigger != Trigger::kNone; }
};

/// Implements the compaction trigger and file-selection policies of §4.1.4:
///
///   Trigger: a TTL-expired file always wins over saturation (DD); otherwise
///   a level exceeding its capacity triggers (leveling: bytes vs M·T^(i+1);
///   tiering: run count vs T). Level ties go to the smallest level, avoiding
///   write stalls.
///
///   Selection: SO picks the file with minimal key-range overlap with the
///   next level (tie → most tombstones); SD picks the file with the highest
///   estimated invalidation count b = p_f + rd_f (tie → oldest tombstone);
///   DD picks the expired file with the oldest tombstone.
class CompactionPicker {
 public:
  CompactionPicker(const Options& resolved_options, VersionSet* versions)
      : options_(resolved_options), versions_(versions) {}

  /// `in_flight` (optional) holds file numbers claimed as inputs by merges
  /// already running on the worker pool; those files are skipped rather
  /// than re-picked — under leveling a claimed candidate is passed over,
  /// under tiering a level with any claimed file cannot merge (a tiering
  /// merge needs every run of the level) and is skipped entirely.
  ///
  /// `oldest_snapshot` is the oldest live snapshot's sequence
  /// (kMaxSequenceNumber when none are pinned). The delete-driven trigger
  /// skips a bottommost file whose tombstones are all newer: they cannot
  /// be dropped until that snapshot is released, so a TTL compaction of
  /// the file would make no progress and re-trigger indefinitely.
  CompactionPick Pick(const Version& version, uint64_t now,
                      const std::set<uint64_t>* in_flight = nullptr,
                      SequenceNumber oldest_snapshot = kMaxSequenceNumber)
      const;

  /// Capacity of disk level `level` (0-based) in bytes: M · T^(level+1).
  uint64_t LevelCapacityBytes(int level) const;

  /// Earliest clock time at which some file's TTL expires, or UINT64_MAX if
  /// FADE is off or no file holds tombstones. The write path compares this
  /// against "now" as an O(1) trigger pre-check. Applies the same
  /// bottommost snapshot-pin exclusion as Pick, so a file whose tombstones
  /// cannot be reclaimed yet does not arm the trigger.
  uint64_t EarliestTtlExpiry(
      const Version& version,
      SequenceNumber oldest_snapshot = kMaxSequenceNumber) const;

  /// Idle-buffer flush guard (Dth/2): a memtable whose oldest tombstone is
  /// older than this must flush so an idle database still meets the
  /// persistence bound. UINT64_MAX when FADE is off.
  uint64_t BufferTtl(const Version& version) const;

  /// Cumulative expiry thresholds c_i per disk level (slot i = level i),
  /// measured against tombstone age since memtable insertion; c_last = Dth.
  std::vector<uint64_t> CumulativeTtls(const Version& version) const;

  /// Byte-balanced subcompaction split points for a merge over `inputs`:
  /// up to `max_partitions - 1` strictly increasing user-key boundaries,
  /// each strictly inside the inputs' combined key span, partitioning the
  /// merge into [b_0=-inf, b_1), [b_1, b_2), ... [b_last, +inf).
  ///
  /// Preferred model: *per-file fence samples*. Each input file's delete
  /// tiles contribute their min-sort-key fences, weighted by the tile's
  /// share of the file's bytes, and the boundaries are the byte-mass
  /// quantiles of the sampled keys — real keys from the actual
  /// distribution, so arbitrary key spaces (hex-ASCII with its '9'→'a'
  /// gap, clustered inserts) partition evenly. A flush's memtable
  /// pseudo-file (file_number 0) has no fences and contributes
  /// interpolated synthetic samples instead.
  ///
  /// Fallback: when any input's fences are unavailable (unopenable file)
  /// or the inputs carry too few fences to place max_partitions - 1
  /// boundaries meaningfully, each file's bytes are modeled as uniform
  /// over its key span via big-endian interpolation (the same model the
  /// selectivity estimates use).
  ///
  /// Returns empty (no split) when inputs hold fewer than two files, when
  /// max_partitions <= 1, or when the key span is too narrow to split.
  std::vector<std::string> ComputeSubcompactionBoundaries(
      const std::vector<std::shared_ptr<FileMeta>>& inputs,
      int max_partitions) const;

  /// FADE's b estimate for `file`: exact point tombstone count plus the
  /// estimated number of tree entries invalidated by the file's range
  /// tombstones (interpolated over per-file key ranges — the "system-wide
  /// histogram" stand-in of §4.1.3).
  double EstimateInvalidation(const Version& version,
                              const FileMeta& file) const;

 private:
  /// The fence-sample model; returns empty when it cannot be applied (some
  /// file unreadable, or too few fences) and the caller should interpolate.
  std::vector<std::string> ComputeFenceSampledBoundaries(
      const std::vector<std::shared_ptr<FileMeta>>& inputs,
      int max_partitions) const;

  /// The uniform-interpolation model (fallback).
  std::vector<std::string> ComputeInterpolatedBoundaries(
      const std::vector<std::shared_ptr<FileMeta>>& inputs,
      int max_partitions) const;

  CompactionPick PickTtlExpired(const Version& version, uint64_t now,
                                const std::set<uint64_t>* in_flight,
                                SequenceNumber oldest_snapshot) const;
  CompactionPick PickSaturated(const Version& version,
                               const std::set<uint64_t>* in_flight) const;

  /// Bytes of next-level files overlapping `file` (SO's objective).
  uint64_t OverlapBytes(const Version& version, int level,
                        const FileMeta& file) const;

  Options options_;
  VersionSet* versions_;
};

/// Interprets the first 8 bytes of a sort key as a big-endian integer, the
/// key-space interpolation model used for range-tombstone selectivity
/// estimates.
uint64_t KeyToU64(const Slice& key);

/// Same, starting at byte `offset` (used after common-prefix stripping).
uint64_t KeyToU64At(const Slice& key, size_t offset);

/// Estimated fraction of [smallest, largest] covered by [begin, end).
double RangeOverlapFraction(const Slice& smallest, const Slice& largest,
                            const Slice& begin, const Slice& end);

}  // namespace lethe

#endif  // LETHE_LSM_COMPACTION_PICKER_H_
