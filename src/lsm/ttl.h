#ifndef LETHE_LSM_TTL_H_
#define LETHE_LSM_TTL_H_

#include <cstdint>
#include <vector>

namespace lethe {

/// FADE's per-level TTL allocation (§4.1.2). Level i (1-based disk levels)
/// receives d_i = d_1 · T^(i-1) with Σ_{i=1..L} d_i = Dth, so files expire at
/// a constant rate per time unit despite larger levels holding exponentially
/// more files. What the policy actually compares against is the *cumulative*
/// budget c_i = d_1 + ... + d_i: a tombstone must have left level i within
/// c_i of its insertion, which makes c_L = Dth the end-to-end persistence
/// bound.
///
/// Returns c_1..c_L indexed by disk level (index 0 = first disk level).
/// Recomputed whenever the tree height changes (paper Fig 4, step 1) — the
/// computation is O(L) and effectively free.
std::vector<uint64_t> ComputeCumulativeTtls(uint64_t dth_micros,
                                            uint32_t size_ratio,
                                            int num_disk_levels);

/// True if a file at `disk_level` (0-based) whose oldest tombstone has the
/// given age has exhausted its TTL budget.
bool TtlExpired(const std::vector<uint64_t>& cumulative_ttls, int disk_level,
                uint64_t tombstone_age_micros);

}  // namespace lethe

#endif  // LETHE_LSM_TTL_H_
