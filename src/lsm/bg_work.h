#ifndef LETHE_LSM_BG_WORK_H_
#define LETHE_LSM_BG_WORK_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/statistics.h"

namespace lethe {

/// Priority-ordered background work queue drained by a pool of worker
/// threads (`Options::background_threads`; 1 preserves the original
/// single-worker behaviour exactly).
///
/// Workers drain the highest-priority class first, FIFO within a class,
/// waking on a condition variable when work arrives. The ordering implements
/// the paper's priority rule for background work:
///
///   1. kFlush                  — memory pressure: immutable memtables must
///                                drain before writers stall.
///   2. kSecondaryDelete        — KiWi secondary range deletes: user-issued
///                                physical deletes, latency-visible.
///   3. kDeleteDrivenCompaction — FADE TTL-expired files (the DD trigger):
///                                delete persistence is a contract (§4.1),
///                                so delete-driven work outranks
///                                space-driven work.
///   4. kSpaceDrivenCompaction  — saturation-triggered compactions.
///
/// The scheduler itself dispatches jobs blindly; *disjointness* between
/// concurrent jobs (which files and output key ranges each merge may touch)
/// is enforced one layer up, by the in-flight job registry in VersionSet —
/// a job that would overlap an in-flight footprint defers itself and is
/// re-armed when the conflicting job completes. See docs/architecture.md.
///
/// Multi-owner pools: one scheduler may serve several DBImpls (ShardedDB
/// shares a single pool across all shards). Each shard registers an owner
/// id and tags its jobs with it; within a priority class the dispatcher
/// round-robins across owners with pending work, so a write-hot shard
/// cannot starve a sibling's flushes of the same class. With a single
/// owner the rotation degenerates to plain FIFO — byte-identical to the
/// pre-sharding scheduler. DetachOwner drains one owner without touching
/// the others: its queued jobs are discarded, its in-flight jobs are waited
/// out, and subsequent Schedule calls for that owner are rejected — so
/// closing one shard can never strand or run jobs of a half-destroyed
/// sibling.
///
/// Thread-safety: all public methods are thread-safe. Jobs run without any
/// scheduler lock held, so they may freely call Schedule().
class BackgroundScheduler {
 public:
  enum class Priority : int {
    kFlush = 0,
    kSecondaryDelete = 1,
    kDeleteDrivenCompaction = 2,
    kSpaceDrivenCompaction = 3,
  };
  static constexpr int kNumPriorities = 4;

  /// Identifies one job source (one DBImpl) in a shared pool. Owner 0
  /// always exists, for single-owner use.
  using OwnerId = uint64_t;
  static constexpr OwnerId kDefaultOwner = 0;

  /// Starts `num_threads` workers (clamped to >= 1). `stats` (optional)
  /// receives bg_jobs_dispatched and the per-class bg_jobs_active gauges.
  explicit BackgroundScheduler(int num_threads = 1,
                               Statistics* stats = nullptr);

  /// Joins the workers. Equivalent to Shutdown().
  ~BackgroundScheduler();

  BackgroundScheduler(const BackgroundScheduler&) = delete;
  BackgroundScheduler& operator=(const BackgroundScheduler&) = delete;

  /// Enqueues `fn` at `priority` on behalf of `owner` and wakes a worker.
  /// Returns false (and drops the job) after Shutdown has begun or after
  /// the owner was detached.
  bool Schedule(Priority priority, std::function<void()> fn,
                OwnerId owner = kDefaultOwner);

  /// Registers a new job source in this pool and returns its id. Thread-safe
  /// with respect to running workers.
  OwnerId RegisterOwner();

  /// Drains one owner out of a live pool: rejects its future Schedule
  /// calls, discards its queued jobs, and blocks until its in-flight jobs
  /// have finished. Jobs of other owners are untouched and keep running.
  /// The caller is responsible for any cleanup the discarded jobs would
  /// have done (DBImpl drains pending flushes inline at close). Idempotent;
  /// detaching kDefaultOwner is allowed (it stays rejected thereafter).
  void DetachOwner(OwnerId owner);

  /// Rejects further Schedule calls, lets the currently running jobs finish,
  /// discards still-queued jobs, and joins every worker thread. Idempotent.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Test hooks: freeze/unfreeze the pool between jobs. TEST_Pause is a
  /// *barrier*: it blocks until every worker has finished its current job,
  /// so on return no job is running and none will start — with more than
  /// one worker a non-barrier pause would leave tests racing against
  /// still-running jobs. While paused the queue accepts jobs but none
  /// start, letting tests deterministically build up backlog (e.g. to
  /// force a write stall).
  void TEST_Pause();
  void TEST_Resume();

 private:
  struct OwnerState {
    std::array<std::deque<std::function<void()>>, kNumPriorities> queues;
    int active = 0;     // this owner's jobs currently executing
    bool detached = false;
  };

  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // signals the workers
  std::condition_variable idle_cv_;  // signals TEST_Pause / DetachOwner
  // Owner id → its per-class queues. References stay valid while the owner
  // is registered (node-based map); DetachOwner erases only once the
  // owner's active count hits zero.
  std::map<OwnerId, OwnerState> owners_;
  // Round-robin rotation per priority class: owners with at least one
  // queued job of that class, in dispatch order. An owner appears at most
  // once per class; the dispatcher pops the front, takes one job, and
  // re-appends the owner while it still has work of that class.
  std::array<std::deque<OwnerId>, kNumPriorities> rotation_;
  size_t queued_ = 0;
  int active_ = 0;  // jobs currently executing across the pool
  OwnerId next_owner_ = 1;
  bool paused_ = false;
  bool shutdown_ = false;
  Statistics* stats_;
  std::vector<std::thread> workers_;
};

}  // namespace lethe

#endif  // LETHE_LSM_BG_WORK_H_
