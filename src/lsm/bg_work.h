#ifndef LETHE_LSM_BG_WORK_H_
#define LETHE_LSM_BG_WORK_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

namespace lethe {

/// Priority-ordered background work queue with one dedicated worker thread.
///
/// The DB enqueues closures tagged with a Priority; the worker drains the
/// highest-priority class first, FIFO within a class, waking on a condition
/// variable when work arrives. The ordering implements the paper's priority
/// rule for background work:
///
///   1. kFlush                  — memory pressure: immutable memtables must
///                                drain before writers stall.
///   2. kSecondaryDelete        — KiWi secondary range deletes: user-issued
///                                physical deletes, latency-visible.
///   3. kDeleteDrivenCompaction — FADE TTL-expired files (the DD trigger):
///                                delete persistence is a contract (§4.1),
///                                so delete-driven work outranks
///                                space-driven work.
///   4. kSpaceDrivenCompaction  — saturation-triggered compactions.
///
/// Single-worker by design: flushes, compactions, and secondary-delete
/// execution all mutate on-disk state, and one worker serializes them
/// without any file-level locking (foreground readers are lock-free against
/// all of them via version snapshots and page-generation fences). Sharding
/// the worker pool is a later scaling step.
///
/// Thread-safety: all public methods are thread-safe. Jobs run without any
/// scheduler lock held, so they may freely call Schedule().
class BackgroundScheduler {
 public:
  enum class Priority : int {
    kFlush = 0,
    kSecondaryDelete = 1,
    kDeleteDrivenCompaction = 2,
    kSpaceDrivenCompaction = 3,
  };
  static constexpr int kNumPriorities = 4;

  BackgroundScheduler();

  /// Joins the worker. Equivalent to Shutdown().
  ~BackgroundScheduler();

  BackgroundScheduler(const BackgroundScheduler&) = delete;
  BackgroundScheduler& operator=(const BackgroundScheduler&) = delete;

  /// Enqueues `fn` at `priority` and wakes the worker. Returns false (and
  /// drops the job) after Shutdown has begun.
  bool Schedule(Priority priority, std::function<void()> fn);

  /// Rejects further Schedule calls, lets the currently running job finish,
  /// discards still-queued jobs, and joins the worker thread. Idempotent.
  /// The caller is responsible for any cleanup the discarded jobs would have
  /// done (DBImpl drains pending flushes inline at close).
  void Shutdown();

  /// Test hooks: freeze/unfreeze the worker between jobs. While paused the
  /// queue accepts jobs but none start, letting tests deterministically
  /// build up backlog (e.g. to force a write stall).
  void TEST_Pause();
  void TEST_Resume();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // signals the worker
  std::array<std::deque<std::function<void()>>, kNumPriorities> queues_;
  size_t queued_ = 0;
  bool paused_ = false;
  bool shutdown_ = false;
  std::thread worker_;
};

}  // namespace lethe

#endif  // LETHE_LSM_BG_WORK_H_
