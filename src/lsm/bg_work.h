#ifndef LETHE_LSM_BG_WORK_H_
#define LETHE_LSM_BG_WORK_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/statistics.h"

namespace lethe {

/// Priority-ordered background work queue drained by a pool of worker
/// threads (`Options::background_threads`; 1 preserves the original
/// single-worker behaviour exactly).
///
/// Workers drain the highest-priority class first, FIFO within a class,
/// waking on a condition variable when work arrives. The ordering implements
/// the paper's priority rule for background work:
///
///   1. kFlush                  — memory pressure: immutable memtables must
///                                drain before writers stall.
///   2. kSecondaryDelete        — KiWi secondary range deletes: user-issued
///                                physical deletes, latency-visible.
///   3. kDeleteDrivenCompaction — FADE TTL-expired files (the DD trigger):
///                                delete persistence is a contract (§4.1),
///                                so delete-driven work outranks
///                                space-driven work.
///   4. kSpaceDrivenCompaction  — saturation-triggered compactions.
///
/// The scheduler itself dispatches jobs blindly; *disjointness* between
/// concurrent jobs (which files and output key ranges each merge may touch)
/// is enforced one layer up, by the in-flight job registry in VersionSet —
/// a job that would overlap an in-flight footprint defers itself and is
/// re-armed when the conflicting job completes. See docs/architecture.md.
///
/// Thread-safety: all public methods are thread-safe. Jobs run without any
/// scheduler lock held, so they may freely call Schedule().
class BackgroundScheduler {
 public:
  enum class Priority : int {
    kFlush = 0,
    kSecondaryDelete = 1,
    kDeleteDrivenCompaction = 2,
    kSpaceDrivenCompaction = 3,
  };
  static constexpr int kNumPriorities = 4;

  /// Starts `num_threads` workers (clamped to >= 1). `stats` (optional)
  /// receives bg_jobs_dispatched and the per-class bg_jobs_active gauges.
  explicit BackgroundScheduler(int num_threads = 1,
                               Statistics* stats = nullptr);

  /// Joins the workers. Equivalent to Shutdown().
  ~BackgroundScheduler();

  BackgroundScheduler(const BackgroundScheduler&) = delete;
  BackgroundScheduler& operator=(const BackgroundScheduler&) = delete;

  /// Enqueues `fn` at `priority` and wakes a worker. Returns false (and
  /// drops the job) after Shutdown has begun.
  bool Schedule(Priority priority, std::function<void()> fn);

  /// Rejects further Schedule calls, lets the currently running jobs finish,
  /// discards still-queued jobs, and joins every worker thread. Idempotent.
  /// The caller is responsible for any cleanup the discarded jobs would have
  /// done (DBImpl drains pending flushes inline at close).
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Test hooks: freeze/unfreeze the pool between jobs. TEST_Pause is a
  /// *barrier*: it blocks until every worker has finished its current job,
  /// so on return no job is running and none will start — with more than
  /// one worker a non-barrier pause would leave tests racing against
  /// still-running jobs. While paused the queue accepts jobs but none
  /// start, letting tests deterministically build up backlog (e.g. to
  /// force a write stall).
  void TEST_Pause();
  void TEST_Resume();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // signals the workers
  std::condition_variable idle_cv_;  // signals the TEST_Pause barrier
  std::array<std::deque<std::function<void()>>, kNumPriorities> queues_;
  size_t queued_ = 0;
  int active_ = 0;  // jobs currently executing across the pool
  bool paused_ = false;
  bool shutdown_ = false;
  Statistics* stats_;
  std::vector<std::thread> workers_;
};

}  // namespace lethe

#endif  // LETHE_LSM_BG_WORK_H_
