#ifndef LETHE_LSM_VERSION_SET_H_
#define LETHE_LSM_VERSION_SET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/options.h"
#include "src/format/sstable_reader.h"
#include "src/lsm/version.h"
#include "src/lsm/version_edit.h"
#include "src/util/record_log.h"
#include "src/util/status.h"

namespace lethe {

// Database file naming. All files live directly under the database
// directory.
std::string TableFileName(const std::string& dbname, uint64_t number);
std::string WalFileName(const std::string& dbname, uint64_t number);
std::string ManifestFileName(const std::string& dbname, uint64_t number);
std::string CurrentFileName(const std::string& dbname);

/// Cache of open SSTable readers keyed by file number. Readers are immutable
/// and shared; eviction happens when the file is deleted, which also drops
/// the file's decoded pages from the page cache (when one is attached).
class TableCache {
 public:
  TableCache(Env* env, const TableOptions& table_options, std::string dbname,
             PageCache* page_cache)
      : env_(env),
        table_options_(table_options),
        dbname_(std::move(dbname)),
        page_cache_(page_cache) {}

  Status GetTable(const FileMeta& meta, std::shared_ptr<SSTableReader>* table);
  void Evict(uint64_t file_number);

  /// The engine-wide decoded-page cache; nullptr when disabled.
  PageCache* page_cache() { return page_cache_; }

 private:
  Env* env_;
  TableOptions table_options_;
  std::string dbname_;
  PageCache* page_cache_;
  std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<SSTableReader>> cache_;
};

/// Owns the mutable identity of the database: the current Version, the
/// MANIFEST log, monotonic counters (file numbers, run ids, sequence
/// numbers), and the seq→time checkpoint map FADE uses to resolve point
/// tombstone insertion times across compactions (§4.1.3: seqnums stand in
/// for timestamps, so no per-entry metadata is added).
///
/// External synchronization: the DB write mutex serializes all mutating
/// calls; current() hands out immutable snapshots and is thread-safe.
class VersionSet {
 public:
  /// `page_cache` may be nullptr (decoded-page caching disabled).
  VersionSet(const Options& resolved_options, std::string dbname,
             PageCache* page_cache = nullptr);

  VersionSet(const VersionSet&) = delete;
  VersionSet& operator=(const VersionSet&) = delete;

  /// Loads or creates the database state. On success current() is valid and
  /// wal_number() names the log to replay.
  Status Recover();

  /// Persists `edit` to the MANIFEST and installs the resulting version.
  /// Stamps counters into the edit; applies any seq_time_checkpoints to the
  /// in-memory map (callers add them via AddSeqTimeCheckpoint first).
  Status LogAndApply(VersionEdit* edit);

  std::shared_ptr<const Version> current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  // Monotonic counters are atomic: the background worker allocates file/run
  // numbers while merging outside the DB mutex, concurrently with the write
  // path allocating sequence numbers.
  uint64_t NewFileNumber() {
    return next_file_number_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t NewRunId() {
    return next_run_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Max-merges the file-number counter past `number`. Recovery calls this
  /// with every WAL number found on disk: background-mode WAL numbers are
  /// allocated without a manifest write, so after a crash the manifest's
  /// counter may lag them, and a fresh allocation must not collide.
  void EnsureFileNumberPast(uint64_t number) {
    uint64_t current = next_file_number_.load(std::memory_order_relaxed);
    while (current <= number &&
           !next_file_number_.compare_exchange_weak(
               current, number + 1, std::memory_order_relaxed)) {
    }
  }

  SequenceNumber LastSequence() const {
    return last_sequence_.load(std::memory_order_acquire);
  }
  void SetLastSequence(SequenceNumber seq) {
    last_sequence_.store(seq, std::memory_order_release);
  }
  SequenceNumber NextSequence() { return AllocateSequences(1); }

  /// Reserves `count` consecutive sequence numbers and returns the first.
  SequenceNumber AllocateSequences(uint64_t count) {
    return last_sequence_.fetch_add(count, std::memory_order_acq_rel) + 1;
  }

  uint64_t wal_number() const { return wal_number_; }
  void set_wal_number(uint64_t n) { wal_number_ = n; }

  /// Registers a checkpoint in the in-memory map and records it in `edit`
  /// for persistence.
  void AddSeqTimeCheckpoint(SequenceNumber seq, uint64_t time,
                            VersionEdit* edit);

  /// Conservative insertion-time floor for the entry with sequence `seq`.
  uint64_t TimeOfSeq(SequenceNumber seq) const;

  TableCache* table_cache() { return &table_cache_; }
  const std::string& dbname() const { return dbname_; }

 private:
  Status CreateFresh();
  Status WriteSnapshotManifest();
  void ApplyCounters(const VersionEdit& edit);

  Options options_;
  std::string dbname_;
  TableCache table_cache_;

  mutable std::mutex mu_;  // guards current_ swap only
  std::shared_ptr<const Version> current_;

  std::unique_ptr<RecordLogWriter> manifest_;
  uint64_t manifest_number_ = 0;

  std::atomic<uint64_t> next_file_number_{1};
  std::atomic<uint64_t> next_run_id_{1};
  std::atomic<SequenceNumber> last_sequence_{0};
  uint64_t wal_number_ = 0;

  std::vector<std::pair<SequenceNumber, uint64_t>> seq_time_map_;
};

}  // namespace lethe

#endif  // LETHE_LSM_VERSION_SET_H_
