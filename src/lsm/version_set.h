#ifndef LETHE_LSM_VERSION_SET_H_
#define LETHE_LSM_VERSION_SET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/options.h"
#include "src/core/statistics.h"
#include "src/format/sstable_reader.h"
#include "src/lsm/version.h"
#include "src/lsm/version_edit.h"
#include "src/util/record_log.h"
#include "src/util/status.h"

namespace lethe {

// Database file naming. All files live directly under the database
// directory.
std::string TableFileName(const std::string& dbname, uint64_t number);
std::string WalFileName(const std::string& dbname, uint64_t number);
std::string ManifestFileName(const std::string& dbname, uint64_t number);
std::string CurrentFileName(const std::string& dbname);

/// Cache of open SSTable readers keyed by file number. Readers are immutable
/// and shared; eviction happens when the file is deleted, which also drops
/// every cached block of the file — decoded pages, its fence/index block,
/// and its filter blocks — from the block cache (when one is attached).
/// `cache_metadata` (Options::cache_index_and_filter_blocks) selects whether
/// readers open pinned (metadata resident for the reader's lifetime) or
/// cached (metadata loads lazily through `page_cache`).
class TableCache {
 public:
  TableCache(Env* env, const TableOptions& table_options, std::string dbname,
             PageCache* page_cache, bool cache_metadata = false)
      : env_(env),
        table_options_(table_options),
        dbname_(std::move(dbname)),
        page_cache_(page_cache),
        cache_metadata_(cache_metadata) {}

  Status GetTable(const FileMeta& meta, std::shared_ptr<SSTableReader>* table);
  void Evict(uint64_t file_number);

  /// The engine-wide decoded-page cache; nullptr when disabled.
  PageCache* page_cache() { return page_cache_; }

 private:
  Env* env_;
  TableOptions table_options_;
  std::string dbname_;
  PageCache* page_cache_;
  bool cache_metadata_;
  std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<SSTableReader>> cache_;
};

/// Footprint of one in-flight background job, the unit of the disjointness
/// rule that lets pool workers run merges concurrently:
///
///   - `input_files` are claimed exclusively: no two in-flight jobs may
///     share an input file (inputs are removed at commit, so sharing one
///     would double-remove it — and under leveling, a job that would write
///     over another job's input range necessarily pulls that input into its
///     own set, so file claims also serialize input-range conflicts).
///   - Jobs emitting output files into the same level must have disjoint
///     output key ranges [output_begin, output_end] (inclusive bounds),
///     preserving the at-most-one-run non-overlap invariant under leveling.
///     Callers pass the *input span* as the output range — outputs are
///     always contained in it, and the wider claim also fences the region
///     being rewritten.
///   - At most one flush runs at a time (immutable memtables must reach L0
///     oldest-first to keep sequence recency ordered).
///   - `exclusive` jobs (CompactAll, secondary range deletes) conflict with
///     everything: they scan or rewrite the whole tree.
struct JobFootprint {
  bool is_flush = false;
  bool exclusive = false;
  std::vector<uint64_t> input_files;
  int output_level = -1;  // -1 = no file output
  std::string output_begin;  // inclusive sort-key bounds of the output
  std::string output_end;
  bool has_output_span = false;

  /// Widens [output_begin, output_end] to cover [begin, end].
  void CoverOutput(const Slice& begin, const Slice& end);

  /// Claims `file` as an input and widens the output span over its key
  /// range. Both merge paths (flush and compaction) build their footprint
  /// through this, so the span convention ConflictsWithInFlight relies on
  /// lives in exactly one place.
  void AddInput(const FileMeta& file);
};

/// Owns the mutable identity of the database: the current Version, the
/// MANIFEST log, monotonic counters (file numbers, run ids, sequence
/// numbers), and the seq→time checkpoint map FADE uses to resolve point
/// tombstone insertion times across compactions (§4.1.3: seqnums stand in
/// for timestamps, so no per-entry metadata is added).
///
/// External synchronization: the DB write mutex serializes all mutating
/// calls; current() hands out immutable snapshots and is thread-safe.
class VersionSet {
 public:
  /// `page_cache` may be nullptr (decoded-page caching disabled);
  /// `stats` may be nullptr (recovery counters dropped).
  VersionSet(const Options& resolved_options, std::string dbname,
             PageCache* page_cache = nullptr, Statistics* stats = nullptr);

  VersionSet(const VersionSet&) = delete;
  VersionSet& operator=(const VersionSet&) = delete;

  /// Loads or creates the database state. On success current() is valid and
  /// wal_number() names the log to replay.
  Status Recover();

  /// Persists `edit` to the MANIFEST and installs the resulting version.
  /// Stamps counters into the edit; applies any seq_time_checkpoints to the
  /// in-memory map (callers add them via AddSeqTimeCheckpoint first).
  Status LogAndApply(VersionEdit* edit);

  std::shared_ptr<const Version> current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  // Monotonic counters are atomic: the background worker allocates file/run
  // numbers while merging outside the DB mutex, concurrently with the write
  // path allocating sequence numbers.
  uint64_t NewFileNumber() {
    return next_file_number_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t NewRunId() {
    return next_run_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Max-merges the file-number counter past `number`. Recovery calls this
  /// with every WAL number found on disk: background-mode WAL numbers are
  /// allocated without a manifest write, so after a crash the manifest's
  /// counter may lag them, and a fresh allocation must not collide.
  void EnsureFileNumberPast(uint64_t number) {
    uint64_t current = next_file_number_.load(std::memory_order_relaxed);
    while (current <= number &&
           !next_file_number_.compare_exchange_weak(
               current, number + 1, std::memory_order_relaxed)) {
    }
  }

  SequenceNumber LastSequence() const {
    return last_sequence_.load(std::memory_order_acquire);
  }
  void SetLastSequence(SequenceNumber seq) {
    last_sequence_.store(seq, std::memory_order_release);
  }
  SequenceNumber NextSequence() { return AllocateSequences(1); }

  /// Reserves `count` consecutive sequence numbers and returns the first.
  SequenceNumber AllocateSequences(uint64_t count) {
    return last_sequence_.fetch_add(count, std::memory_order_acq_rel) + 1;
  }

  uint64_t wal_number() const { return wal_number_; }
  void set_wal_number(uint64_t n) { wal_number_ = n; }

  /// Registers a checkpoint in the in-memory map and records it in `edit`
  /// for persistence.
  void AddSeqTimeCheckpoint(SequenceNumber seq, uint64_t time,
                            VersionEdit* edit);

  /// Conservative insertion-time floor for the entry with sequence `seq`.
  /// Thread-safe: merges resolve tombstone times off the DB mutex while
  /// flushes add checkpoints under it.
  uint64_t TimeOfSeq(SequenceNumber seq) const;

  // ---- in-flight job registry (disjointness scheduling) -----------------
  //
  // Externally synchronized by the DB mutex, like every other mutating call:
  // a job registers its footprint *before* releasing the mutex for merge
  // I/O and unregisters in the same critical section as its LogAndApply, so
  // claims and version membership always change together. current() stays
  // lock-free for readers.

  /// Claims `footprint` and returns a registration id. The caller must have
  /// checked ConflictsWithInFlight first (same mutex hold).
  uint64_t RegisterInFlightJob(const JobFootprint& footprint);

  /// Releases a claim made by RegisterInFlightJob.
  void UnregisterInFlightJob(uint64_t job_id);

  /// True when `footprint` overlaps any in-flight job under the rules
  /// documented on JobFootprint. An overlapping job must defer.
  bool ConflictsWithInFlight(const JobFootprint& footprint) const;

  /// File numbers claimed as inputs by in-flight jobs; the compaction
  /// picker skips these instead of re-picking work already being done.
  const std::set<uint64_t>& InFlightInputFiles() const {
    return inflight_files_;
  }

  size_t InFlightJobCount() const { return inflight_jobs_.size(); }

  /// Table files retired from the current version but not yet reaped
  /// (possibly still pinned by snapshots). The resume-time orphan sweep
  /// must not treat these as garbage. Same external synchronization as the
  /// registry (the DB mutex).
  const std::set<uint64_t>& GraveyardFiles() const { return graveyard_; }

  TableCache* table_cache() { return &table_cache_; }
  const std::string& dbname() const { return dbname_; }
  uint64_t manifest_number() const { return manifest_number_; }

  /// True when Recover could not read the manifest CURRENT named and fell
  /// back to an older intact snapshot. Tables the lost manifest referenced
  /// look unreferenced to the recovery orphan sweep, which must then
  /// quarantine them (they hold acked data DB::Repair can readopt) instead
  /// of deleting them.
  bool recovered_via_fallback() const { return recovered_via_fallback_; }

  /// Deletes every table file still parked in the graveyard, regardless of
  /// pins. Called at DB close, when no reader can remain.
  void SweepAllObsoleteFiles();

  /// Reaps unpinned graveyard files now. Normally the sweep runs at every
  /// LogAndApply; barriers call this so an idle DB does not sit on dead
  /// files until the next merge just because a since-released snapshot
  /// pinned them at commit time. Same external synchronization as
  /// LogAndApply (the DB mutex).
  void SweepObsoleteFiles() { SweepGraveyardLocked(); }

 private:
  Status CreateFresh();
  /// Replays one manifest log into current_/counters/seq_time_map_
  /// (resetting the map first, so a retry on a different manifest starts
  /// clean). Corruption statuses are returned, not fatal: Recover may fall
  /// back to an older manifest.
  Status LoadManifest(const std::string& path);
  Status WriteSnapshotManifest();
  void ApplyCounters(const VersionEdit& edit);

  /// Deletes graveyard files referenced by no still-pinned Version
  /// snapshot. Readers (iterators, in-flight merges) pin versions via
  /// shared_ptr; deleting a removed file the moment its edit commits would
  /// race a concurrent scan that opens the file lazily through an older
  /// snapshot, so removal only *retires* files here and this sweep reaps
  /// the unpinned ones on each subsequent install.
  void SweepGraveyardLocked();

  Options options_;
  std::string dbname_;
  TableCache table_cache_;
  Statistics* stats_;  // may be nullptr

  mutable std::mutex mu_;  // guards current_ swap only
  std::shared_ptr<const Version> current_;

  std::unique_ptr<RecordLogWriter> manifest_;
  uint64_t manifest_number_ = 0;
  bool recovered_via_fallback_ = false;  // set once during Recover

  std::atomic<uint64_t> next_file_number_{1};
  std::atomic<uint64_t> next_run_id_{1};
  std::atomic<SequenceNumber> last_sequence_{0};
  uint64_t wal_number_ = 0;

  mutable std::mutex seq_time_mu_;  // guards seq_time_map_ (see TimeOfSeq)
  std::vector<std::pair<SequenceNumber, uint64_t>> seq_time_map_;

  // Deferred table-file GC (guarded by the DB mutex, like LogAndApply):
  // files removed from the current version await deletion until no retired
  // Version snapshot still references them.
  std::set<uint64_t> graveyard_;
  std::vector<std::weak_ptr<const Version>> retired_versions_;

  // In-flight job registry (guarded by the DB mutex, see above).
  std::unordered_map<uint64_t, JobFootprint> inflight_jobs_;
  std::set<uint64_t> inflight_files_;  // union of in-flight input_files
  uint64_t next_job_id_ = 1;
};

}  // namespace lethe

#endif  // LETHE_LSM_VERSION_SET_H_
