#ifndef LETHE_LSM_VERSION_H_
#define LETHE_LSM_VERSION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/format/file_meta.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace lethe {

struct VersionEdit;

/// One sorted run: files with pairwise non-overlapping sort-key ranges,
/// ordered by smallest_key. Under leveling each disk level holds at most one
/// run; under tiering a level accumulates up to T runs before compaction.
struct SortedRun {
  uint64_t run_id = 0;
  std::vector<std::shared_ptr<FileMeta>> files;

  uint64_t TotalBytes() const;
  uint64_t TotalEntries() const;

  /// Index of the unique file whose range may contain `key`, or -1.
  int FindFile(const Slice& user_key) const;
};

/// Immutable snapshot of the on-disk tree structure. Disk level 0 here is
/// "Level 1" in the paper's numbering (the paper's Level 0 is the memtable).
/// Readers pin a Version via shared_ptr; writers install successors through
/// VersionSet::LogAndApply.
class Version {
 public:
  /// levels[i] = runs of disk level i, oldest run first.
  const std::vector<std::vector<SortedRun>>& levels() const { return levels_; }

  int num_levels() const { return static_cast<int>(levels_.size()); }

  /// Deepest level index containing any file, or -1 when the tree is empty.
  int DeepestNonEmptyLevel() const;

  /// True if no level deeper than `level` holds any file (so a compaction
  /// into `level` reaches the bottom of the tree and may drop tombstones).
  bool IsBottommost(int level) const;

  uint64_t LevelBytes(int level) const;
  uint64_t LevelLiveEntries(int level) const;
  int LevelRunCount(int level) const;
  uint64_t TotalLiveEntries() const;
  uint64_t TotalFiles() const;

  /// Files of `level` (all runs) overlapping sort-key range [begin, end]
  /// (inclusive bounds; file ranges already cover their range tombstones).
  std::vector<std::shared_ptr<FileMeta>> OverlappingFiles(
      int level, const Slice& begin, const Slice& end) const;

  /// All files in the tree, with their levels.
  std::vector<std::pair<int, std::shared_ptr<FileMeta>>> AllFiles() const;

  /// Builds the successor version resulting from applying `edit`.
  static std::shared_ptr<Version> Apply(const Version* base,
                                        const VersionEdit& edit,
                                        Status* status);

 private:
  std::vector<std::vector<SortedRun>> levels_;
};

}  // namespace lethe

#endif  // LETHE_LSM_VERSION_H_
