// DB::Repair — rebuild a MANIFEST from the table files alone.
//
// The manifest is the only copy of the tree's shape; when it and every
// fallback snapshot are damaged, the data still lives in the .sst files and
// each file's properties block still describes its key/seq/tombstone ranges
// (guarded by the footer's meta_crc). Repair re-derives a consistent — if
// conservatively aged — version from those properties:
//
//   - every table whose metadata checksum verifies is adopted; any that
//     fails verification is renamed to `<name>.bad` (invisible to the
//     engine's file-name parser) for offline inspection,
//   - leveling rebuilds the one-run-per-level invariant greedily: files are
//     placed newest-first (by largest_seq), each strictly below every
//     already-placed file it overlaps, so an older file can never shadow a
//     newer overlapping one on the shallow-to-deep read path,
//   - tiering gives each file its own run, run ids assigned in seq order
//     (run recency is id order),
//   - FADE metadata is reconstructed conservatively: with the seq→time
//     checkpoint map lost, a salvaged point tombstone's insertion time
//     floors to 0, so its persistence deadline can only move *earlier* —
//     the delete-persistence guarantee survives repair,
//   - counters resume past every number found on disk, and the manifest's
//     wal_number points at the oldest surviving WAL so unflushed writes
//     replay at the next Open.

#include <algorithm>
#include <cinttypes>
#include <string>
#include <vector>

#include "src/core/db.h"
#include "src/format/file_meta.h"
#include "src/format/sstable_format.h"
#include "src/format/sstable_reader.h"
#include "src/util/coding.h"
#include "src/util/record_log.h"
#include "src/lsm/version_set.h"

namespace lethe {

namespace {

/// Parses the footer + properties block of one table file. The caller has
/// already verified the metadata checksum via SSTableReader::Open; this
/// only needs to decode.
Status ReadTableProperties(Env* env, const std::string& fname,
                           uint64_t file_size, FileMeta* meta) {
  if (file_size < kFooterSize) {
    return Status::Corruption("file shorter than footer");
  }
  std::unique_ptr<RandomAccessFile> file;
  LETHE_RETURN_IF_ERROR(env->NewRandomAccessFile(fname, &file));
  char footer_buf[kFooterSize];
  Slice footer;
  LETHE_RETURN_IF_ERROR(file->Read(file_size - kFooterSize, kFooterSize,
                                   &footer, footer_buf));
  if (footer.size() != kFooterSize ||
      DecodeFixed64(footer.data() + kFooterSize - 8) != kTableMagic) {
    return Status::Corruption("bad table magic");
  }
  const uint64_t props_offset = DecodeFixed64(footer.data() + 24);
  const uint32_t props_len = DecodeFixed32(footer.data() + 32);
  if (props_offset + props_len > file_size) {
    return Status::Corruption("properties block out of bounds");
  }
  std::string props_buf(props_len, '\0');
  Slice props;
  LETHE_RETURN_IF_ERROR(
      file->Read(props_offset, props_len, &props, props_buf.data()));

  uint32_t num_pages = 0, num_tiles = 0;
  uint64_t num_entries = 0, num_point_ts = 0, num_range_ts = 0;
  Slice smallest_key, largest_key;
  uint64_t min_delete_key = 0, max_delete_key = 0;
  uint64_t smallest_seq = 0, largest_seq = 0;
  uint64_t oldest_point_ts_seq = 0, oldest_range_ts_time = 0;
  if (!GetVarint32(&props, &num_pages) || !GetVarint32(&props, &num_tiles) ||
      !GetFixed64(&props, &num_entries) ||
      !GetFixed64(&props, &num_point_ts) ||
      !GetFixed64(&props, &num_range_ts) ||
      !GetLengthPrefixedSlice(&props, &smallest_key) ||
      !GetLengthPrefixedSlice(&props, &largest_key) ||
      !GetFixed64(&props, &min_delete_key) ||
      !GetFixed64(&props, &max_delete_key) ||
      !GetFixed64(&props, &smallest_seq) || !GetFixed64(&props, &largest_seq) ||
      !GetFixed64(&props, &oldest_point_ts_seq) ||
      !GetFixed64(&props, &oldest_range_ts_time)) {
    return Status::Corruption("properties block malformed");
  }

  meta->file_size = file_size;
  meta->num_entries = num_entries;
  meta->num_point_tombstones = num_point_ts;
  meta->num_range_tombstones = num_range_ts;
  meta->smallest_key = smallest_key.ToString();
  meta->largest_key = largest_key.ToString();
  meta->min_delete_key = min_delete_key;
  meta->max_delete_key = max_delete_key;
  meta->smallest_seq = smallest_seq;
  meta->largest_seq = largest_seq;
  meta->num_pages = num_pages;
  // Conservative FADE reconstruction: the seq→time checkpoints died with
  // the manifest, so a point tombstone's insertion time floors to 0 — its
  // TTL reads as already expired and the next delete-driven compaction
  // persists it. Deadlines shorten, never lengthen.
  uint64_t oldest = kNoTombstoneTime;
  if (num_point_ts > 0) {
    oldest = 0;
  }
  if (num_range_ts > 0) {
    oldest = std::min(oldest, oldest_range_ts_time);
  }
  meta->oldest_tombstone_time = oldest;
  return Status::OK();
}

bool KeyRangesOverlap(const FileMeta& a, const FileMeta& b) {
  return Slice(a.smallest_key).compare(Slice(b.largest_key)) <= 0 &&
         Slice(b.smallest_key).compare(Slice(a.largest_key)) <= 0;
}

}  // namespace

Status DB::Repair(const Options& options, const std::string& name) {
  const Options resolved = options.WithDefaults();
  LETHE_RETURN_IF_ERROR(resolved.Validate());
  if (resolved.num_shards > 1) {
    // Shards are independent single-shard databases under <name>/shard-<i>;
    // repair each in turn. A shard directory that never got created (crash
    // before first open finished) is not an error to the siblings.
    Options shard_options = resolved;
    shard_options.num_shards = 1;
    Status result;
    for (int i = 0; i < resolved.num_shards; i++) {
      const std::string shard_name = name + "/shard-" + std::to_string(i);
      Status s = DB::Repair(shard_options, shard_name);
      if (!s.ok() && result.ok()) {
        result = s;
      }
    }
    return result;
  }
  Env* env = resolved.env;
  std::vector<std::string> children;
  LETHE_RETURN_IF_ERROR(env->GetChildren(name, &children));

  std::vector<FileMeta> salvaged;
  std::vector<uint64_t> old_manifests;
  uint64_t min_wal = 0;
  uint64_t max_number = 0;
  for (const std::string& child : children) {
    uint64_t number = 0;
    if (sscanf(child.c_str(), "%" SCNu64 ".sst", &number) == 1 &&
        child == std::string(TableFileName("", number), 1)) {
      max_number = std::max(max_number, number);
      const std::string fname = name + "/" + child;
      uint64_t file_size = 0;
      Status s = env->GetFileSize(fname, &file_size);
      if (s.ok()) {
        // Open verifies the footer and the metadata checksum — the same
        // gate every normal read passes through.
        std::unique_ptr<RandomAccessFile> file;
        s = env->NewRandomAccessFile(fname, &file);
        if (s.ok()) {
          std::unique_ptr<SSTableReader> reader;
          s = SSTableReader::Open(resolved.table, std::move(file), file_size,
                                  &reader);
        }
      }
      FileMeta meta;
      meta.file_number = number;
      if (s.ok()) {
        s = ReadTableProperties(env, fname, file_size, &meta);
      }
      if (!s.ok()) {
        // Quarantine, don't delete: the page data may still be partially
        // readable with offline tooling. The .bad suffix hides the file
        // from the engine's name parser (and its orphan sweep).
        env->RenameFile(fname, fname + ".bad").ok();
        continue;
      }
      salvaged.push_back(std::move(meta));
    } else if (sscanf(child.c_str(), "%" SCNu64 ".wal", &number) == 1 &&
               child == std::string(WalFileName("", number), 1)) {
      // The round-trip name check matters: sscanf's return value counts
      // conversions, not trailing literal matches, so without it a
      // quarantined "000123.sst.bad" would parse as WAL 123.
      max_number = std::max(max_number, number);
      if (min_wal == 0 || number < min_wal) {
        min_wal = number;  // oldest surviving log: replay starts here
      }
    } else if (sscanf(child.c_str(), "MANIFEST-%" SCNu64, &number) == 1 &&
               child == std::string(ManifestFileName("", number), 1)) {
      max_number = std::max(max_number, number);
      old_manifests.push_back(number);
    }
  }

  // Newest-first: under leveling the greedy placement below then keeps any
  // overlapping older file strictly deeper, preserving recency.
  std::sort(salvaged.begin(), salvaged.end(),
            [](const FileMeta& a, const FileMeta& b) {
              if (a.largest_seq != b.largest_seq) {
                return a.largest_seq > b.largest_seq;
              }
              return a.file_number > b.file_number;
            });

  VersionEdit edit;
  uint64_t next_run_id = 1;
  SequenceNumber last_sequence = 0;
  if (resolved.compaction_style == CompactionStyle::kTiering) {
    // One run per file, ids in age order (older = smaller id). All land in
    // L0; the size-ratio triggers re-tier them on the next open.
    uint64_t id = salvaged.size();
    for (FileMeta& meta : salvaged) {
      meta.run_id = id--;
      last_sequence = std::max(last_sequence, meta.largest_seq);
    }
    next_run_id = salvaged.size() + 1;
    for (FileMeta& meta : salvaged) {
      edit.added_files.emplace_back(0, std::move(meta));
    }
  } else {
    std::vector<std::vector<FileMeta>> levels;
    for (FileMeta& meta : salvaged) {
      last_sequence = std::max(last_sequence, meta.largest_seq);
      // Get returns the first hit scanning shallow→deep, so every file must
      // sit strictly below every newer (= already-placed) file it overlaps.
      // The shallowest level satisfying that is 1 + the deepest overlapping
      // placement — NOT the shallowest overlap-free slot, which could park
      // an old file above a newer overlapping one and serve stale values.
      // That level is itself overlap-free: any placed file there would have
      // pushed the search deeper.
      size_t level = 0;
      for (size_t l = 0; l < levels.size(); l++) {
        if (std::any_of(levels[l].begin(), levels[l].end(),
                        [&](const FileMeta& placed) {
                          return KeyRangesOverlap(placed, meta);
                        })) {
          level = l + 1;
        }
      }
      if (level == levels.size()) {
        levels.emplace_back();
      }
      levels[level].push_back(std::move(meta));
    }
    for (size_t level = 0; level < levels.size(); level++) {
      for (FileMeta& meta : levels[level]) {
        edit.added_files.emplace_back(static_cast<int>(level),
                                      std::move(meta));
      }
    }
  }

  // Write the rebuilt manifest as a fresh snapshot and swing CURRENT at it
  // atomically (write temp + rename), exactly like a normal recovery's
  // snapshot rewrite. The old manifests stay behind; the next Open's
  // orphan sweep removes everything CURRENT no longer names.
  const uint64_t manifest_number = max_number + 1;
  edit.next_file_number = manifest_number + 1;
  edit.last_sequence = last_sequence;
  edit.wal_number = min_wal;
  edit.next_run_id = next_run_id;

  const std::string manifest_name = ManifestFileName(name, manifest_number);
  std::unique_ptr<WritableFile> file;
  LETHE_RETURN_IF_ERROR(env->NewWritableFile(manifest_name, &file));
  RecordLogWriter manifest(std::move(file), /*sync_on_write=*/false);
  std::string payload;
  edit.EncodeTo(&payload);
  LETHE_RETURN_IF_ERROR(manifest.AddRecord(payload));
  LETHE_RETURN_IF_ERROR(manifest.Sync());
  LETHE_RETURN_IF_ERROR(manifest.Close());

  const std::string tmp = name + "/CURRENT.tmp";
  char buf[64];
  snprintf(buf, sizeof(buf), "MANIFEST-%06" PRIu64 "\n", manifest_number);
  LETHE_RETURN_IF_ERROR(WriteStringToFile(env, buf, tmp));
  return env->RenameFile(tmp, CurrentFileName(name));
}

}  // namespace lethe
