#include "src/lsm/merging_iterator.h"

#include <algorithm>

namespace lethe {

namespace {

class MergingIterator final : public InternalIterator {
 public:
  explicit MergingIterator(
      std::vector<std::unique_ptr<InternalIterator>> children)
      : children_(std::move(children)) {}

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) {
      child->SeekToFirst();
    }
    FindSmallest();
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) {
      child->Seek(target);
    }
    FindSmallest();
  }

  void Next() override {
    current_->Next();
    FindSmallest();
  }

  const ParsedEntry& entry() const override { return current_->entry(); }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) {
        return s;
      }
    }
    return Status::OK();
  }

 private:
  void FindSmallest() {
    current_ = nullptr;
    for (auto& child : children_) {
      if (!child->Valid()) {
        continue;
      }
      if (current_ == nullptr ||
          CompareInternal(child->entry(), current_->entry()) < 0) {
        current_ = child.get();
      }
    }
  }

  std::vector<std::unique_ptr<InternalIterator>> children_;
  InternalIterator* current_ = nullptr;
};

}  // namespace

std::unique_ptr<InternalIterator> NewMergingIterator(
    std::vector<std::unique_ptr<InternalIterator>> children) {
  return std::make_unique<MergingIterator>(std::move(children));
}

}  // namespace lethe
