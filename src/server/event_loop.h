#ifndef LETHE_SERVER_EVENT_LOOP_H_
#define LETHE_SERVER_EVENT_LOOP_H_

#include <sys/epoll.h>

#include <cstdint>
#include <vector>

#include "src/util/status.h"

namespace lethe {
namespace server {

/// Thin epoll wrapper owned by one event-loop worker thread. Carries an
/// eventfd so other threads (shutdown, SIGTERM, the SHUTDOWN command) can
/// interrupt a blocking Poll; the wakeup write is async-signal-safe.
///
/// Callers register fds with an opaque tag pointer (the Connection, or
/// nullptr-distinguishable markers for the listen socket); Poll returns the
/// raw epoll events with tags intact. Only the owning thread may call
/// Add/Mod/Del/Poll; Wakeup is thread-safe.
class EventLoop {
 public:
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  bool ok() const { return epoll_fd_ >= 0 && wakeup_fd_ >= 0; }

  Status Add(int fd, uint32_t events, void* tag);
  Status Mod(int fd, uint32_t events, void* tag);
  void Del(int fd);

  /// Waits up to timeout_ms (-1 = forever) and fills `events`. The wakeup
  /// eventfd is drained internally and never surfaces as an event. Returns
  /// the number of events, 0 on timeout or wakeup, -1 on error.
  int Poll(int timeout_ms, std::vector<struct epoll_event>* events);

  /// Interrupts a concurrent or future Poll. Thread- and signal-safe.
  void Wakeup();

 private:
  static constexpr int kMaxEventsPerPoll = 256;

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;
};

}  // namespace server
}  // namespace lethe

#endif  // LETHE_SERVER_EVENT_LOOP_H_
