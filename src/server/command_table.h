#ifndef LETHE_SERVER_COMMAND_TABLE_H_
#define LETHE_SERVER_COMMAND_TABLE_H_

#include <string>

#include "src/util/slice.h"

namespace lethe {
namespace server {

/// The command set the RESP front-end maps onto the engine. Three classes:
///   - pure reads (GET/MGET/EXISTS/SCAN/TTL/...) execute immediately
///     against the connection's pinned snapshot;
///   - pure writes (SET/MSET/DEL/...) coalesce into the event-loop turn's
///     shared WriteBatch and are acknowledged when it group-commits;
///   - admin/connection commands (PING/INFO/SHUTDOWN/...) execute inline.
enum class Cmd {
  kGet,
  kSet,
  kDel,
  kExists,
  kMGet,
  kMSet,
  kScan,
  kExpire,
  kTtl,
  kPersist,
  kPing,
  kEcho,
  kQuit,
  kSelect,
  kCommand,
  kInfo,
  kDbSize,
  kShutdown,
  kLethePurge,  // LETHE.PURGE <begin> <end>: SecondaryRangeDelete by
                // delete key — the KiWi retention purge over RESP.
};

struct CommandInfo {
  Cmd cmd;
  /// Required argc including the command name; -1 max means unbounded.
  int min_args;
  int max_args;
  /// True if the command stages operations into the turn's WriteBatch (its
  /// reply is withheld from the socket until that batch commits).
  bool is_write;
};

/// Case-insensitive lookup. `scratch` is a caller-owned reusable buffer for
/// the uppercased name (no allocation once warm). Returns nullptr for
/// unknown commands.
const CommandInfo* LookupCommand(const Slice& name, std::string* scratch);

}  // namespace server
}  // namespace lethe

#endif  // LETHE_SERVER_COMMAND_TABLE_H_
