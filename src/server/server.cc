#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "src/lsm/txn.h"
#include "src/server/event_loop.h"

namespace lethe {
namespace server {

namespace {

constexpr size_t kReadChunk = 16 * 1024;

// Reply buffers above this capacity are released (not just cleared) once
// drained, so one burst of fat replies does not park memory on an idle
// connection forever.
constexpr size_t kOutputShrinkThreshold = 1 << 20;

void ToUpper(const Slice& in, std::string* out) {
  out->clear();
  for (size_t i = 0; i < in.size(); i++) {
    out->push_back(
        static_cast<char>(toupper(static_cast<unsigned char>(in[i]))));
  }
}

// Strict base-10 integer: optional '-', digits only, no overflow.
bool ParseInt(const Slice& s, long long* value) {
  if (s.empty() || s.size() > 20) return false;
  size_t i = 0;
  bool neg = false;
  if (s[0] == '-') {
    neg = true;
    i = 1;
    if (s.size() == 1) return false;
  }
  unsigned long long v = 0;
  for (; i < s.size(); i++) {
    if (s[i] < '0' || s[i] > '9') return false;
    unsigned long long next = v * 10 + static_cast<unsigned>(s[i] - '0');
    if (next < v) return false;
    v = next;
  }
  if (!neg && v > 9223372036854775807ull) return false;
  if (neg && v > 9223372036854775808ull) return false;
  *value = neg ? -static_cast<long long>(v) : static_cast<long long>(v);
  return true;
}

uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  if (a != 0 && b > UINT64_MAX / a) return UINT64_MAX;
  return a * b;
}

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  return (UINT64_MAX - a < b) ? UINT64_MAX : a + b;
}

// Redis-style glob for SCAN MATCH: '*', '?', '\' escape, '[...]' classes
// (with leading '^' negation and 'a-z' ranges).
bool GlobMatch(const char* p, size_t plen, const char* s, size_t slen) {
  while (plen > 0) {
    switch (p[0]) {
      case '*':
        while (plen > 1 && p[1] == '*') {
          p++;
          plen--;
        }
        if (plen == 1) return true;
        for (size_t i = 0; i <= slen; i++) {
          if (GlobMatch(p + 1, plen - 1, s + i, slen - i)) return true;
        }
        return false;
      case '?':
        if (slen == 0) return false;
        s++;
        slen--;
        break;
      case '[': {
        if (slen == 0) return false;
        p++;
        plen--;
        bool negate = plen > 0 && p[0] == '^';
        if (negate) {
          p++;
          plen--;
        }
        bool match = false;
        while (plen > 0 && p[0] != ']') {
          if (p[0] == '\\' && plen >= 2) {
            if (p[1] == s[0]) match = true;
            p += 2;
            plen -= 2;
          } else if (plen >= 3 && p[1] == '-' && p[2] != ']') {
            char lo = p[0], hi = p[2];
            if (lo > hi) std::swap(lo, hi);
            if (s[0] >= lo && s[0] <= hi) match = true;
            p += 3;
            plen -= 3;
          } else {
            if (p[0] == s[0]) match = true;
            p++;
            plen--;
          }
        }
        if (plen == 0) return false;  // unterminated class
        if (negate) match = !match;
        if (!match) return false;
        s++;
        slen--;
        break;
      }
      case '\\':
        if (plen >= 2) {
          p++;
          plen--;
        }
        [[fallthrough]];
      default:
        if (slen == 0 || p[0] != s[0]) return false;
        s++;
        slen--;
        break;
    }
    p++;
    plen--;
  }
  return slen == 0;
}

bool GlobMatch(const Slice& pattern, const Slice& str) {
  return GlobMatch(pattern.data(), pattern.size(), str.data(), str.size());
}

// SCAN cursors are the hex-encoded next sort key (opaque to clients, safe
// to print, and stable: the engine orders by raw bytes, hex preserves it).
std::string HexEncode(const Slice& s) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() * 2);
  for (size_t i = 0; i < s.size(); i++) {
    unsigned char b = static_cast<unsigned char>(s[i]);
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool HexDecode(const Slice& s, std::string* out) {
  if (s.size() % 2 != 0) return false;
  out->clear();
  out->reserve(s.size() / 2);
  for (size_t i = 0; i < s.size(); i += 2) {
    int hi = HexNibble(s[i]);
    int lo = HexNibble(s[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

}  // namespace

struct RespServer::Connection {
  int fd = -1;
  RingBuffer in;
  RespParser parser;

  // Reply buffer. Bytes below `acked` are final; bytes above it are
  // optimistic acknowledgements of writes staged in the turn batch, held
  // back from the socket until the batch commits (and replaced by errors
  // if it does not).
  std::string out;
  size_t out_sent = 0;
  size_t acked = 0;
  uint32_t pending_writes = 0;  // write replies between acked and out.size()

  // Read-your-writes overlay: the connection's writes staged in the turn
  // batch but not yet committed. Cleared whenever the batch commits.
  std::unordered_map<std::string, RespServer::StagedWrite> overlay;

  // End offset and kind of every reply appended above `acked` (writes are
  // optimistic, reads are final but withheld to keep FIFO order). If the
  // batch fails, the tail is rebuilt from these marks: write replies become
  // errors, interleaved read replies are preserved verbatim.
  std::vector<std::pair<size_t, bool>> reply_marks;  // (end, is_write)

  uint64_t drain_parsed = 0;  // commands decoded in the current drain

  const Snapshot* snap = nullptr;  // pinned for the rest of this turn

  bool in_dirty_list = false;
  bool in_snap_list = false;
  bool in_touched_list = false;
  bool want_write = false;   // EPOLLOUT currently armed
  bool should_close = false; // close once the reply buffer drains
  bool closed = false;       // fd gone; object lingers until turn end
};

struct RespServer::Worker {
  RespServer* server = nullptr;
  int index = 0;
  EventLoop loop;
  int listen_fd = -1;
  char listen_tag = 0;  // address used as the listen socket's epoll tag
  std::thread thread;
  std::vector<struct epoll_event> events;
  std::unordered_set<Connection*> conns;      // owned
  std::vector<Connection*> graveyard;         // closed this turn, reap at end

  // The turn's coalesced write batch and the bookkeeping lists (membership
  // flags live on the Connection so pushes stay O(1) and duplicate-free).
  WriteBatch batch;
  std::vector<Connection*> dirty;    // hold optimistic acks for `batch`
  std::vector<Connection*> snaps;    // pinned a snapshot this turn
  std::vector<Connection*> touched;  // may have output to flush

  // Reused scratch to keep the command hot path allocation-free.
  std::string scratch_upper;
  std::string value;

  uint64_t last_expire_micros = 0;
};

RespServer::RespServer(DB* db, const ServerOptions& options)
    : db_(db), opts_(options) {
  clock_ = opts_.clock != nullptr ? opts_.clock : SystemClock::Default();
  parser_limits_.max_args = opts_.max_args_per_command;
  parser_limits_.max_bulk_bytes = opts_.max_request_bytes;
}

RespServer::~RespServer() {
  Stop();
}

Status RespServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  if (!db_) return Status::InvalidArgument("null DB");

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  if (inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + opts_.host);
  }

  const int num_workers = std::max(1, opts_.num_workers);
  uint16_t bound_port = opts_.port;
  auto fail = [this](const Status& s) {
    for (auto& w : workers_) {
      if (w->listen_fd >= 0) ::close(w->listen_fd);
    }
    workers_.clear();
    return s;
  };

  for (int i = 0; i < num_workers; i++) {
    auto w = std::make_unique<Worker>();
    w->server = this;
    w->index = i;
    if (!w->loop.ok()) return fail(Status::IOError("epoll setup failed"));

    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) return fail(Status::IOError(strerror(errno)));
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0 &&
        num_workers > 1) {
      ::close(fd);
      return fail(Status::IOError("SO_REUSEPORT unavailable"));
    }
    addr.sin_port = htons(bound_port);
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Status s = Status::IOError(std::string("bind: ") + strerror(errno));
      ::close(fd);
      return fail(s);
    }
    if (i == 0 && opts_.port == 0) {
      // Kernel-assigned port: discover it so the remaining workers can
      // share it via SO_REUSEPORT.
      struct sockaddr_in got;
      socklen_t len = sizeof(got);
      if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&got), &len) !=
          0) {
        ::close(fd);
        return fail(Status::IOError(strerror(errno)));
      }
      bound_port = ntohs(got.sin_port);
    }
    if (::listen(fd, opts_.listen_backlog) != 0) {
      Status s = Status::IOError(std::string("listen: ") + strerror(errno));
      ::close(fd);
      return fail(s);
    }
    w->listen_fd = fd;
    Status s = w->loop.Add(fd, EPOLLIN, &w->listen_tag);  // level-triggered
    if (!s.ok()) return fail(s);
    workers_.push_back(std::move(w));
  }
  port_ = bound_port;

  // Detect whether the engine supports optimistic transactions (DBImpl
  // does; ShardedDB does not) — decides how the active expiry cycle
  // validates its deletes.
  {
    OptimisticTransaction probe(db_);
    std::string unused;
    Status ps = probe.Get(ReadOptions(), Slice("\x01lethe.txn.probe"),
                          &unused);
    txn_supported_ = !ps.IsInvalidArgument();
    (void)probe.Rollback();
  }

  start_micros_ = NowMicros();
  stopping_.store(false, std::memory_order_release);
  for (auto& w : workers_) {
    w->thread = std::thread(&RespServer::WorkerMain, this, w.get());
  }
  started_ = true;
  return Status::OK();
}

void RespServer::RequestStop() {
  stopping_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    w->loop.Wakeup();
  }
}

void RespServer::Join() {
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void RespServer::Stop() {
  if (!started_) return;
  RequestStop();
  Join();
  workers_.clear();
  started_ = false;
}

Statistics RespServer::StatsSnapshot() const {
  Statistics merged(net_stats_);
  merged.AddFrom(db_->stats());
  return merged;
}

void RespServer::WorkerMain(Worker* w) {
  const int timeout_ms =
      (w->index == 0 && opts_.active_expire_interval_ms > 0)
          ? static_cast<int>(
                std::min<uint64_t>(opts_.active_expire_interval_ms, 1000))
          : -1;
  while (!stopping()) {
    w->loop.Poll(timeout_ms, &w->events);
    for (const struct epoll_event& ev : w->events) {
      if (ev.data.ptr == &w->listen_tag) {
        AcceptReady(w);
        continue;
      }
      Connection* c = static_cast<Connection*>(ev.data.ptr);
      if (c->closed) continue;
      if (ev.events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(w, c);
        continue;
      }
      if (ev.events & EPOLLIN) ReadAndProcess(w, c);
      if (!c->closed && (ev.events & EPOLLOUT)) FlushOutput(w, c);
    }
    EndTurn(w);
  }
  DrainOnStop(w);
}

void RespServer::AcceptReady(Worker* w) {
  for (;;) {
    int fd = ::accept4(w->listen_fd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or a transient error: the next event retries
    }
    net_stats_.net_connections_accepted.fetch_add(1,
                                                  std::memory_order_relaxed);
    if (conn_count_.fetch_add(1, std::memory_order_relaxed) + 1 >
        opts_.max_connections) {
      conn_count_.fetch_sub(1, std::memory_order_relaxed);
      net_stats_.net_connections_rejected.fetch_add(
          1, std::memory_order_relaxed);
      static const char kReject[] = "-ERR max number of clients reached\r\n";
      ssize_t r = ::write(fd, kReject, sizeof(kReject) - 1);
      (void)r;
      ::close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto* c = new Connection();
    c->fd = fd;
    c->parser = RespParser(parser_limits_);
    Status s = w->loop.Add(fd, EPOLLIN | EPOLLET, c);
    if (!s.ok()) {
      ::close(fd);
      delete c;
      conn_count_.fetch_sub(1, std::memory_order_relaxed);
      net_stats_.net_connections_closed.fetch_add(1,
                                                  std::memory_order_relaxed);
      continue;
    }
    w->conns.insert(c);
  }
}

void RespServer::ReadAndProcess(Worker* w, Connection* c) {
  Touch(w, c);
  c->drain_parsed = 0;
  bool peer_closed = false;
  while (!c->closed && !c->should_close) {
    char* p = c->in.Reserve(kReadChunk);
    ssize_t r = ::read(c->fd, p, kReadChunk);
    if (r > 0) {
      c->in.Commit(static_cast<size_t>(r));
      net_stats_.net_bytes_in.fetch_add(static_cast<uint64_t>(r),
                                        std::memory_order_relaxed);
      // Parse and execute per chunk so the input buffer never holds more
      // than one partial frame plus one read — memory stays bounded no
      // matter how deep the client pipelines.
      ProcessInput(w, c);
      continue;  // edge-triggered: must drain until EAGAIN
    }
    if (r == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(w, c);
    break;
  }
  if (!c->closed && c->drain_parsed > 0) {
    net_stats_.net_commands.fetch_add(c->drain_parsed,
                                      std::memory_order_relaxed);
    net_stats_.RecordNetPipelineDepth(c->drain_parsed);
  }
  if (!c->closed && peer_closed) {
    c->should_close = true;  // flush owed replies, then close
  }
}

void RespServer::ProcessInput(Worker* w, Connection* c) {
  while (!c->closed && !c->should_close) {
    size_t frame_bytes = 0;
    RespParser::Result res = c->parser.Parse(c->in, &frame_bytes);
    if (res == RespParser::Result::kNeedMore) {
      if (c->in.size() > opts_.max_request_bytes) {
        ProtocolError(w, c, "request exceeds maximum allowed size");
      }
      return;
    }
    if (res == RespParser::Result::kError) {
      ProtocolError(w, c, c->parser.error());
      return;
    }
    c->drain_parsed++;
    ExecuteCommand(w, c, c->parser.argv());
    if (c->closed) return;
    c->in.Consume(frame_bytes);
    c->parser.Reset();
    if (c->out.size() - c->out_sent > opts_.max_output_buffer_bytes) {
      // The client is not reading its socket; staged writes still commit
      // (they were accepted), but the replies are moot.
      net_stats_.net_slow_client_disconnects.fetch_add(
          1, std::memory_order_relaxed);
      CloseConnection(w, c);
      return;
    }
  }
}

void RespServer::ProtocolError(Worker* w, Connection* c,
                               const std::string& msg) {
  net_stats_.net_protocol_errors.fetch_add(1, std::memory_order_relaxed);
  EnsureConnCommitted(w, c);  // resolve optimistic acks before the error
  AppendError(&c->out, "ERR Protocol error: " + msg);
  FinishImmediateReply(c);
  c->should_close = true;  // RESP cannot resync after a framing error
}

void RespServer::ExecuteCommand(Worker* w, Connection* c,
                                const std::vector<Slice>& argv) {
  const CommandInfo* info = LookupCommand(argv[0], &w->scratch_upper);
  if (info == nullptr) {
    std::string name(argv[0].data(),
                     std::min<size_t>(argv[0].size(), 64));
    AppendError(&c->out, "ERR unknown command '" + name + "'");
    FinishImmediateReply(c);
    return;
  }
  const int argc = static_cast<int>(argv.size());
  if (argc < info->min_args ||
      (info->max_args != -1 && argc > info->max_args)) {
    AppendError(&c->out, "ERR wrong number of arguments for '" +
                             w->scratch_upper + "' command");
    FinishImmediateReply(c);
    return;
  }
  // Point reads see the connection's own staged writes through its
  // overlay, so they never force a mid-turn commit; only iterator-shaped
  // commands (SCAN, DBSIZE) and LETHE.PURGE call EnsureConnCommitted
  // themselves. Reply FIFO order is kept by the acked/pending machinery.
  switch (info->cmd) {
    case Cmd::kGet:
      CmdGet(w, c, argv);
      break;
    case Cmd::kSet:
      CmdSet(w, c, argv);
      break;
    case Cmd::kDel:
      CmdDelOrExists(w, c, argv, /*is_del=*/true);
      break;
    case Cmd::kExists:
      CmdDelOrExists(w, c, argv, /*is_del=*/false);
      break;
    case Cmd::kMGet:
      CmdMGet(w, c, argv);
      break;
    case Cmd::kMSet:
      CmdMSet(w, c, argv);
      break;
    case Cmd::kScan:
      CmdScan(w, c, argv);
      break;
    case Cmd::kExpire:
      CmdExpire(w, c, argv);
      break;
    case Cmd::kTtl:
      CmdTtl(w, c, argv);
      break;
    case Cmd::kPersist:
      CmdPersist(w, c, argv);
      break;
    case Cmd::kPing:
      if (argc == 2) {
        AppendBulkString(&c->out, argv[1]);
      } else {
        AppendSimpleString(&c->out, "PONG");
      }
      FinishImmediateReply(c);
      break;
    case Cmd::kEcho:
      AppendBulkString(&c->out, argv[1]);
      FinishImmediateReply(c);
      break;
    case Cmd::kQuit:
      AppendSimpleString(&c->out, "OK");
      FinishImmediateReply(c);
      c->should_close = true;
      break;
    case Cmd::kSelect:
      if (argv[1] == Slice("0")) {
        AppendSimpleString(&c->out, "OK");
      } else {
        AppendError(&c->out, "ERR DB index is out of range");
      }
      FinishImmediateReply(c);
      break;
    case Cmd::kCommand:
      AppendArrayHeader(&c->out, 0);
      FinishImmediateReply(c);
      break;
    case Cmd::kInfo:
      CmdInfo(w, c, argv);
      break;
    case Cmd::kDbSize: {
      // Exact count, like Redis: scan the live keyspace under a snapshot so
      // overwrites, tombstones, and expired-but-unpurged entries are not
      // miscounted. O(n) — INFO's Keyspace section carries the O(1)
      // approximate figure for monitoring.
      EnsureConnCommitted(w, c);
      EnsureSnapshot(w, c);
      ReadOptions ro;
      ro.snapshot = c->snap;
      ro.fill_page_cache = false;
      const uint64_t now = NowMicros();
      long long n = 0;
      std::unique_ptr<Iterator> it = db_->NewIterator(ro);
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        if (!IsExpired(it->delete_key(), now)) n++;
      }
      AppendInteger(&c->out, n);
      FinishImmediateReply(c);
      break;
    }
    case Cmd::kShutdown:
      c->should_close = true;  // like Redis: no reply on success
      RequestStop();
      break;
    case Cmd::kLethePurge:
      CmdLethePurge(w, c, argv);
      break;
  }
}

void RespServer::EndTurn(Worker* w) {
  CommitTurnBatch(w);
  for (Connection* c : w->touched) {
    c->in_touched_list = false;
    if (!c->closed) FlushOutput(w, c);
  }
  w->touched.clear();
  // Per-connection snapshots live for one turn: pinned lazily at the first
  // read, dropped here so compaction is never held back by idle clients.
  for (Connection* c : w->snaps) {
    c->in_snap_list = false;
    ReleaseConnSnapshot(c);
  }
  w->snaps.clear();
  for (Connection* c : w->graveyard) {
    w->conns.erase(c);
    delete c;
  }
  w->graveyard.clear();
  if (w->index == 0) MaybeActiveExpire(w);
}

void RespServer::CommitTurnBatch(Worker* w) {
  Status s;
  const size_t ops = w->batch.Count();
  if (ops > 0) {
    WriteOptions wo;
    wo.sync = opts_.sync_writes;
    s = db_->Write(wo, &w->batch);
    w->batch.Clear();
    net_stats_.net_batches_coalesced.fetch_add(1, std::memory_order_relaxed);
    net_stats_.net_batch_ops_coalesced.fetch_add(ops,
                                                 std::memory_order_relaxed);
    net_stats_.RecordNetBatchSize(ops);
  }
  for (Connection* c : w->dirty) {
    c->in_dirty_list = false;
    if (c->closed) {
      c->pending_writes = 0;
      c->overlay.clear();
      c->reply_marks.clear();
      continue;
    }
    if (s.ok()) {
      c->acked = c->out.size();
    } else {
      // Rebuild the withheld tail: every optimistic write ack becomes an
      // error, while read replies interleaved among them (answered from
      // the overlay) are kept verbatim — the client still sees exactly
      // one reply per command, in order.
      const std::string err = "ERR write failed: " + s.ToString();
      std::string rebuilt;
      size_t prev = c->acked;
      for (const auto& [end, is_write] : c->reply_marks) {
        if (is_write) {
          AppendError(&rebuilt, err);
        } else {
          rebuilt.append(c->out, prev, end - prev);
        }
        prev = end;
      }
      c->out.resize(c->acked);
      c->out += rebuilt;
      c->acked = c->out.size();
    }
    c->pending_writes = 0;
    c->overlay.clear();
    c->reply_marks.clear();
    // The connection's writes are now committed: drop its pinned snapshot
    // so the next read in this turn observes them.
    ReleaseConnSnapshot(c);
  }
  w->dirty.clear();
}

void RespServer::MaybeCommitEagerly(Worker* w) {
  if (w->batch.Count() >= opts_.max_batch_ops ||
      w->batch.ApproximateBytes() >= opts_.max_batch_bytes) {
    CommitTurnBatch(w);
  }
}

void RespServer::FlushOutput(Worker* w, Connection* c) {
  const size_t sendable =
      (c->pending_writes == 0) ? c->out.size() : c->acked;
  while (c->out_sent < sendable) {
    ssize_t n = ::write(c->fd, c->out.data() + c->out_sent,
                        sendable - c->out_sent);
    if (n > 0) {
      c->out_sent += static_cast<size_t>(n);
      net_stats_.net_bytes_out.fetch_add(static_cast<uint64_t>(n),
                                         std::memory_order_relaxed);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!c->want_write) {
        c->want_write = true;
        (void)w->loop.Mod(c->fd, EPOLLIN | EPOLLET | EPOLLOUT, c);
      }
      return;
    }
    CloseConnection(w, c);
    return;
  }
  if (c->out_sent == c->out.size()) {
    if (c->out.capacity() > kOutputShrinkThreshold) {
      std::string().swap(c->out);
    } else {
      c->out.clear();
    }
    c->out_sent = 0;
    c->acked = 0;
    if (c->should_close) {
      CloseConnection(w, c);
      return;
    }
  }
  if (c->want_write) {
    c->want_write = false;
    (void)w->loop.Mod(c->fd, EPOLLIN | EPOLLET, c);
  }
}

void RespServer::CloseConnection(Worker* w, Connection* c) {
  if (c->closed) return;
  c->closed = true;
  c->should_close = true;
  ReleaseConnSnapshot(c);
  w->loop.Del(c->fd);
  ::close(c->fd);
  c->fd = -1;
  conn_count_.fetch_sub(1, std::memory_order_relaxed);
  net_stats_.net_connections_closed.fetch_add(1, std::memory_order_relaxed);
  w->graveyard.push_back(c);  // freed at turn end; lists may still point here
}

void RespServer::DrainOnStop(Worker* w) {
  // Stop accepting first.
  w->loop.Del(w->listen_fd);
  ::close(w->listen_fd);
  w->listen_fd = -1;

  // Commit anything staged (resolving optimistic acks), release snapshots,
  // then spend the drain budget flushing reply buffers. Clients that do not
  // drain their socket in time are cut off.
  CommitTurnBatch(w);
  for (Connection* c : w->snaps) {
    c->in_snap_list = false;
    ReleaseConnSnapshot(c);
  }
  w->snaps.clear();
  for (Connection* c : w->touched) c->in_touched_list = false;
  w->touched.clear();

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(opts_.drain_timeout_ms);
  for (;;) {
    bool pending = false;
    for (Connection* c : w->conns) {
      if (c->closed) continue;
      if (c->out_sent < c->out.size()) FlushOutput(w, c);
      if (!c->closed && c->out_sent < c->out.size()) pending = true;
    }
    if (!pending || std::chrono::steady_clock::now() >= deadline) break;
    w->loop.Poll(10, &w->events);  // wait for sockets to become writable
  }

  for (Connection* c : w->conns) {
    if (!c->closed) {
      c->closed = true;
      ReleaseConnSnapshot(c);
      ::close(c->fd);
      c->fd = -1;
      conn_count_.fetch_sub(1, std::memory_order_relaxed);
      net_stats_.net_connections_closed.fetch_add(1,
                                                  std::memory_order_relaxed);
    }
    delete c;
  }
  w->conns.clear();
  w->graveyard.clear();
}

void RespServer::EnsureConnCommitted(Worker* w, Connection* c) {
  if (c->pending_writes > 0) CommitTurnBatch(w);
}

void RespServer::EnsureSnapshot(Worker* w, Connection* c) {
  if (!opts_.snapshot_reads || c->snap != nullptr) return;
  c->snap = db_->GetSnapshot();
  if (!c->in_snap_list) {
    c->in_snap_list = true;
    w->snaps.push_back(c);
  }
}

void RespServer::ReleaseConnSnapshot(Connection* c) {
  if (c->snap != nullptr) {
    db_->ReleaseSnapshot(c->snap);
    c->snap = nullptr;
  }
}

void RespServer::StageWriteReply(Worker* w, Connection* c) {
  if (c->pending_writes == 0) c->acked = c->out.size();
  c->pending_writes++;
  if (!c->in_dirty_list) {
    c->in_dirty_list = true;
    w->dirty.push_back(c);
  }
}

void RespServer::FinishImmediateReply(Connection* c) {
  if (c->pending_writes == 0) {
    c->acked = c->out.size();
  } else {
    // A read (or error) reply interleaved among unacked write replies:
    // final bytes, but withheld behind the batch to keep FIFO order, and
    // marked so a failed commit can rebuild around them.
    c->reply_marks.emplace_back(c->out.size(), false);
  }
}

void RespServer::FinishWriteReply(Connection* c) {
  c->reply_marks.emplace_back(c->out.size(), true);
}

const RespServer::StagedWrite* RespServer::OverlayFind(
    Connection* c, const Slice& key) const {
  if (c->overlay.empty()) return nullptr;
  auto it = c->overlay.find(std::string(key.data(), key.size()));
  return it == c->overlay.end() ? nullptr : &it->second;
}

void RespServer::OverlayPut(Connection* c, const Slice& key,
                            uint64_t delete_key, const Slice& value) {
  StagedWrite& sw = c->overlay[std::string(key.data(), key.size())];
  sw.deleted = false;
  sw.delete_key = delete_key;
  // EXPIRE/PERSIST re-stage the value they just read from this very
  // entry; skip the self-aliasing copy.
  if (value.data() != sw.value.data() || value.size() != sw.value.size()) {
    sw.value.assign(value.data(), value.size());
  }
}

void RespServer::OverlayDelete(Connection* c, const Slice& key) {
  StagedWrite& sw = c->overlay[std::string(key.data(), key.size())];
  sw.deleted = true;
  sw.delete_key = 0;
  sw.value.clear();
}

void RespServer::Touch(Worker* w, Connection* c) {
  if (!c->in_touched_list) {
    c->in_touched_list = true;
    w->touched.push_back(c);
  }
}

void RespServer::CmdGet(Worker* w, Connection* c,
                        const std::vector<Slice>& argv) {
  if (const StagedWrite* sw = OverlayFind(c, argv[1])) {
    if (sw->deleted) {
      AppendNullBulkString(&c->out);
    } else if (IsExpired(sw->delete_key, NowMicros())) {
      net_stats_.net_expired_lazy.fetch_add(1, std::memory_order_relaxed);
      AppendNullBulkString(&c->out);
    } else {
      AppendBulkString(&c->out, sw->value);
    }
    FinishImmediateReply(c);
    return;
  }
  EnsureSnapshot(w, c);
  ReadOptions ro;
  ro.snapshot = c->snap;
  uint64_t dk = 0;
  Status s = db_->GetWithDeleteKey(ro, argv[1], &w->value, &dk);
  if (s.ok()) {
    if (IsExpired(dk, NowMicros())) {
      net_stats_.net_expired_lazy.fetch_add(1, std::memory_order_relaxed);
      AppendNullBulkString(&c->out);
    } else {
      AppendBulkString(&c->out, w->value);
    }
  } else if (s.IsNotFound()) {
    AppendNullBulkString(&c->out);
  } else {
    AppendError(&c->out, "ERR " + s.ToString());
  }
  FinishImmediateReply(c);
}

void RespServer::CmdSet(Worker* w, Connection* c,
                        const std::vector<Slice>& argv) {
  uint64_t delete_key = 0;
  for (size_t i = 3; i < argv.size();) {
    ToUpper(argv[i], &w->scratch_upper);
    long long amount = 0;
    if ((w->scratch_upper == "EX" || w->scratch_upper == "PX") &&
        i + 1 < argv.size() && ParseInt(argv[i + 1], &amount) &&
        amount > 0) {
      const uint64_t unit = w->scratch_upper == "EX" ? 1000000ull : 1000ull;
      delete_key = SaturatingAdd(
          NowMicros(), SaturatingMul(static_cast<uint64_t>(amount), unit));
      if (delete_key == 0) delete_key = 1;  // 0 means "no expiry"
      ttl_seen_.store(true, std::memory_order_relaxed);
      i += 2;
    } else {
      AppendError(&c->out, "ERR syntax error");
      FinishImmediateReply(c);
      return;
    }
  }
  StageWriteReply(w, c);
  w->batch.Put(argv[1], delete_key, argv[2]);
  OverlayPut(c, argv[1], delete_key, argv[2]);
  AppendSimpleString(&c->out, "OK");
  FinishWriteReply(c);
  MaybeCommitEagerly(w);
}

void RespServer::CmdDelOrExists(Worker* w, Connection* c,
                                const std::vector<Slice>& argv,
                                bool is_del) {
  // The existence check must see the connection's own pipelined writes:
  // overlay first, then the engine (latest for DEL's read-modify-write,
  // snapshot for EXISTS).
  ReadOptions ro;
  const uint64_t now = NowMicros();
  long long found = 0;
  uint64_t dk = 0;
  std::vector<size_t> hit_idx;
  for (size_t i = 1; i < argv.size(); i++) {
    if (const StagedWrite* sw = OverlayFind(c, argv[i])) {
      if (sw->deleted) continue;
      if (IsExpired(sw->delete_key, now)) {
        net_stats_.net_expired_lazy.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      found++;
      if (is_del) hit_idx.push_back(i);
      continue;
    }
    if (!is_del && ro.snapshot == nullptr) {
      EnsureSnapshot(w, c);
      ro.snapshot = c->snap;
    }
    Status s = db_->GetWithDeleteKey(ro, argv[i], &w->value, &dk);
    if (!s.ok()) continue;
    if (IsExpired(dk, now)) {
      net_stats_.net_expired_lazy.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    found++;
    if (is_del) hit_idx.push_back(i);
  }
  if (is_del && !hit_idx.empty()) {
    StageWriteReply(w, c);
    for (size_t i : hit_idx) {
      w->batch.Delete(argv[i]);
      OverlayDelete(c, argv[i]);
    }
    AppendInteger(&c->out, found);
    FinishWriteReply(c);
    MaybeCommitEagerly(w);
  } else {
    AppendInteger(&c->out, found);
    FinishImmediateReply(c);
  }
}

void RespServer::CmdMGet(Worker* w, Connection* c,
                         const std::vector<Slice>& argv) {
  EnsureSnapshot(w, c);
  ReadOptions ro;
  ro.snapshot = c->snap;
  const uint64_t now = NowMicros();
  AppendArrayHeader(&c->out, argv.size() - 1);
  for (size_t i = 1; i < argv.size(); i++) {
    if (const StagedWrite* sw = OverlayFind(c, argv[i])) {
      if (sw->deleted) {
        AppendNullBulkString(&c->out);
      } else if (IsExpired(sw->delete_key, now)) {
        net_stats_.net_expired_lazy.fetch_add(1, std::memory_order_relaxed);
        AppendNullBulkString(&c->out);
      } else {
        AppendBulkString(&c->out, sw->value);
      }
      continue;
    }
    uint64_t dk = 0;
    Status s = db_->GetWithDeleteKey(ro, argv[i], &w->value, &dk);
    if (s.ok() && !IsExpired(dk, now)) {
      AppendBulkString(&c->out, w->value);
    } else {
      if (s.ok()) {
        net_stats_.net_expired_lazy.fetch_add(1, std::memory_order_relaxed);
      }
      AppendNullBulkString(&c->out);
    }
  }
  FinishImmediateReply(c);
}

void RespServer::CmdMSet(Worker* w, Connection* c,
                         const std::vector<Slice>& argv) {
  if ((argv.size() - 1) % 2 != 0) {
    AppendError(&c->out, "ERR wrong number of arguments for MSET");
    FinishImmediateReply(c);
    return;
  }
  StageWriteReply(w, c);
  for (size_t i = 1; i + 1 < argv.size(); i += 2) {
    w->batch.Put(argv[i], 0, argv[i + 1]);
    OverlayPut(c, argv[i], 0, argv[i + 1]);
  }
  AppendSimpleString(&c->out, "OK");
  FinishWriteReply(c);
  MaybeCommitEagerly(w);
}

void RespServer::CmdScan(Worker* w, Connection* c,
                         const std::vector<Slice>& argv) {
  // The cursor is the hex-encoded next sort key ("0" = start/done) —
  // stateless on the server, stable across restarts, O(log n) to resume.
  std::string start;
  if (!(argv[1] == Slice("0")) && !HexDecode(argv[1], &start)) {
    AppendError(&c->out, "ERR invalid cursor");
    FinishImmediateReply(c);
    return;
  }
  long long count = 10;
  Slice pattern;
  bool have_pattern = false;
  for (size_t i = 2; i < argv.size();) {
    ToUpper(argv[i], &w->scratch_upper);
    long long parsed = 0;
    if (w->scratch_upper == "COUNT" && i + 1 < argv.size() &&
        ParseInt(argv[i + 1], &parsed) && parsed > 0) {
      count = std::min<long long>(parsed, 10000);
      i += 2;
    } else if (w->scratch_upper == "MATCH" && i + 1 < argv.size()) {
      pattern = argv[i + 1];
      have_pattern = true;
      i += 2;
    } else {
      AppendError(&c->out, "ERR syntax error");
      FinishImmediateReply(c);
      return;
    }
  }
  // Iterators cannot consult the overlay: commit the staged batch so the
  // scan observes this connection's own pipelined writes.
  EnsureConnCommitted(w, c);
  EnsureSnapshot(w, c);
  ReadOptions ro;
  ro.snapshot = c->snap;
  std::unique_ptr<Iterator> it = db_->NewIterator(ro);
  if (start.empty()) {
    it->SeekToFirst();
  } else {
    it->Seek(start);
  }
  const uint64_t now = NowMicros();
  std::vector<std::string> keys;
  long long examined = 0;
  while (it->Valid() && examined < count) {
    if (IsExpired(it->delete_key(), now)) {
      net_stats_.net_expired_lazy.fetch_add(1, std::memory_order_relaxed);
    } else if (!have_pattern || GlobMatch(pattern, it->key())) {
      keys.emplace_back(it->key().data(), it->key().size());
    }
    examined++;
    it->Next();
  }
  if (!it->status().ok()) {
    AppendError(&c->out, "ERR " + it->status().ToString());
    FinishImmediateReply(c);
    return;
  }
  const std::string cursor = it->Valid() ? HexEncode(it->key()) : "0";
  AppendArrayHeader(&c->out, 2);
  AppendBulkString(&c->out, cursor);
  AppendArrayHeader(&c->out, keys.size());
  for (const std::string& k : keys) AppendBulkString(&c->out, k);
  FinishImmediateReply(c);
}

void RespServer::CmdExpire(Worker* w, Connection* c,
                           const std::vector<Slice>& argv) {
  // Read-modify-write: the overlay supplies this connection's own
  // pipelined SETs, the engine's latest-committed state covers the rest.
  // The RMW is not atomic against writers on other connections — a racing
  // SET between the read and this turn's commit wins wholesale, which
  // matches EXPIRE-then-SET semantics.
  long long secs = 0;
  if (!ParseInt(argv[2], &secs)) {
    AppendError(&c->out, "ERR value is not an integer or out of range");
    FinishImmediateReply(c);
    return;
  }
  const uint64_t now = NowMicros();
  uint64_t dk = 0;
  const std::string* cur_value = nullptr;
  if (const StagedWrite* sw = OverlayFind(c, argv[1])) {
    if (sw->deleted || IsExpired(sw->delete_key, now)) {
      if (!sw->deleted) {
        net_stats_.net_expired_lazy.fetch_add(1, std::memory_order_relaxed);
      }
      AppendInteger(&c->out, 0);
      FinishImmediateReply(c);
      return;
    }
    dk = sw->delete_key;
    cur_value = &sw->value;
  } else {
    Status s =
        db_->GetWithDeleteKey(ReadOptions(), argv[1], &w->value, &dk);
    if (!s.ok() || IsExpired(dk, now)) {
      if (s.ok()) {
        net_stats_.net_expired_lazy.fetch_add(1, std::memory_order_relaxed);
      }
      AppendInteger(&c->out, 0);
      FinishImmediateReply(c);
      return;
    }
    cur_value = &w->value;
  }
  StageWriteReply(w, c);
  if (secs <= 0) {
    w->batch.Delete(argv[1]);  // non-positive TTL deletes, like Redis
    OverlayDelete(c, argv[1]);
  } else {
    uint64_t ndk = SaturatingAdd(
        now, SaturatingMul(static_cast<uint64_t>(secs), 1000000ull));
    if (ndk == 0) ndk = 1;
    ttl_seen_.store(true, std::memory_order_relaxed);
    w->batch.Put(argv[1], ndk, *cur_value);
    OverlayPut(c, argv[1], ndk, *cur_value);
  }
  AppendInteger(&c->out, 1);
  FinishWriteReply(c);
  MaybeCommitEagerly(w);
}

void RespServer::CmdTtl(Worker* w, Connection* c,
                        const std::vector<Slice>& argv) {
  const uint64_t now = NowMicros();
  if (const StagedWrite* sw = OverlayFind(c, argv[1])) {
    long long reply;
    if (sw->deleted) {
      reply = -2;
    } else if (IsExpired(sw->delete_key, now)) {
      net_stats_.net_expired_lazy.fetch_add(1, std::memory_order_relaxed);
      reply = -2;
    } else if (sw->delete_key == 0) {
      reply = -1;
    } else {
      reply = static_cast<long long>((sw->delete_key - now + 999999) /
                                     1000000);
    }
    AppendInteger(&c->out, reply);
    FinishImmediateReply(c);
    return;
  }
  EnsureSnapshot(w, c);
  ReadOptions ro;
  ro.snapshot = c->snap;
  uint64_t dk = 0;
  Status s = db_->GetWithDeleteKey(ro, argv[1], &w->value, &dk);
  long long reply;
  if (!s.ok()) {
    reply = -2;
  } else if (IsExpired(dk, now)) {
    net_stats_.net_expired_lazy.fetch_add(1, std::memory_order_relaxed);
    reply = -2;
  } else if (dk == 0) {
    reply = -1;
  } else {
    reply = static_cast<long long>((dk - now + 999999) / 1000000);
  }
  AppendInteger(&c->out, reply);
  FinishImmediateReply(c);
}

void RespServer::CmdPersist(Worker* w, Connection* c,
                            const std::vector<Slice>& argv) {
  // RMW, same overlay-first shape and caveats as CmdExpire.
  const uint64_t now = NowMicros();
  const std::string* cur_value = nullptr;
  if (const StagedWrite* sw = OverlayFind(c, argv[1])) {
    if (sw->deleted || sw->delete_key == 0 ||
        IsExpired(sw->delete_key, now)) {
      if (!sw->deleted && IsExpired(sw->delete_key, now)) {
        net_stats_.net_expired_lazy.fetch_add(1, std::memory_order_relaxed);
      }
      AppendInteger(&c->out, 0);
      FinishImmediateReply(c);
      return;
    }
    cur_value = &sw->value;
  } else {
    uint64_t dk = 0;
    Status s =
        db_->GetWithDeleteKey(ReadOptions(), argv[1], &w->value, &dk);
    if (!s.ok() || dk == 0 || IsExpired(dk, now)) {
      if (s.ok() && IsExpired(dk, now)) {
        net_stats_.net_expired_lazy.fetch_add(1, std::memory_order_relaxed);
      }
      AppendInteger(&c->out, 0);
      FinishImmediateReply(c);
      return;
    }
    cur_value = &w->value;
  }
  StageWriteReply(w, c);
  w->batch.Put(argv[1], 0, *cur_value);
  OverlayPut(c, argv[1], 0, *cur_value);
  AppendInteger(&c->out, 1);
  FinishWriteReply(c);
  MaybeCommitEagerly(w);
}

void RespServer::CmdInfo(Worker* w, Connection* c,
                         const std::vector<Slice>& argv) {
  (void)w;
  AppendBulkString(&c->out,
                   BuildInfo(argv.size() == 2 ? argv[1] : Slice()));
  FinishImmediateReply(c);
}

void RespServer::CmdLethePurge(Worker* w, Connection* c,
                               const std::vector<Slice>& argv) {
  // SecondaryRangeDelete bypasses the batch path entirely, so the staged
  // batch must commit first to keep this ordered after the connection's
  // own pipelined writes.
  EnsureConnCommitted(w, c);
  long long begin = 0, end = 0;
  if (!ParseInt(argv[1], &begin) || !ParseInt(argv[2], &end) || begin < 0 ||
      end < begin) {
    AppendError(&c->out, "ERR invalid delete-key range");
    FinishImmediateReply(c);
    return;
  }
  Status s = db_->SecondaryRangeDelete(WriteOptions(),
                                       static_cast<uint64_t>(begin),
                                       static_cast<uint64_t>(end));
  if (s.ok()) {
    AppendSimpleString(&c->out, "OK");
  } else {
    AppendError(&c->out, "ERR " + s.ToString());
  }
  FinishImmediateReply(c);
}

std::string RespServer::BuildInfo(const Slice& section) {
  std::string sec;
  ToUpper(section, &sec);
  const bool all = sec.empty() || sec == "ALL" || sec == "DEFAULT" ||
                   sec == "EVERYTHING";
  std::string out;
  auto add = [&out](const char* k, uint64_t v) {
    out += k;
    out += ':';
    out += std::to_string(v);
    out += "\r\n";
  };
  const Statistics& es = db_->stats();
  if (all || sec == "SERVER") {
    out += "# Server\r\n";
    out += "engine:lethe\r\n";
    add("tcp_port", port_);
    add("io_threads_active", workers_.size());
    add("uptime_in_seconds", (NowMicros() - start_micros_) / 1000000);
    out += "\r\n";
  }
  if (all || sec == "CLIENTS") {
    out += "# Clients\r\n";
    add("connected_clients", static_cast<uint64_t>(std::max(
                                 0, connection_count())));
    add("maxclients", static_cast<uint64_t>(opts_.max_connections));
    add("rejected_connections", net_stats_.net_connections_rejected);
    add("slow_client_disconnects", net_stats_.net_slow_client_disconnects);
    out += "\r\n";
  }
  if (all || sec == "STATS") {
    out += "# Stats\r\n";
    add("total_connections_received", net_stats_.net_connections_accepted);
    add("total_commands_processed", net_stats_.net_commands);
    add("total_net_input_bytes", net_stats_.net_bytes_in);
    add("total_net_output_bytes", net_stats_.net_bytes_out);
    add("protocol_errors", net_stats_.net_protocol_errors);
    add("coalesced_batches", net_stats_.net_batches_coalesced);
    add("coalesced_batch_ops", net_stats_.net_batch_ops_coalesced);
    const Histogram pipe = net_stats_.NetPipelineDepthHistogram();
    const Histogram batch = net_stats_.NetBatchSizeHistogram();
    add("pipeline_depth_p50", static_cast<uint64_t>(pipe.Percentile(50)));
    add("pipeline_depth_p99", static_cast<uint64_t>(pipe.Percentile(99)));
    add("net_batch_size_p50", static_cast<uint64_t>(batch.Percentile(50)));
    add("net_batch_size_p99", static_cast<uint64_t>(batch.Percentile(99)));
    add("expired_lazy", net_stats_.net_expired_lazy);
    add("expired_active", net_stats_.net_keys_expired_active);
    out += "\r\n";
  }
  if (all || sec == "ENGINE") {
    out += "# Engine\r\n";
    add("group_commit_batches", es.group_commit_batches);
    add("group_commit_entries", es.group_commit_entries);
    add("wal_appends", es.wal_appends);
    add("wal_syncs", es.wal_syncs);
    add("flushes", es.flushes);
    add("compactions", es.compactions);
    add("write_stalls", es.write_stalls);
    add("stall_micros", es.stall_micros);
    add("point_lookups", es.point_lookups);
    add("page_cache_hits", es.page_cache_hits);
    add("page_cache_misses", es.page_cache_misses);
    out += "\r\n";
  }
  if (all || sec == "KEYSPACE") {
    out += "# Keyspace\r\n";
    out += "db0:keys_approx=" + std::to_string(db_->ApproximateEntryCount()) +
           ",expire_horizon_micros=" +
           std::to_string(expire_horizon_.load(std::memory_order_relaxed)) +
           "\r\n";
  }
  return out;
}

void RespServer::MaybeActiveExpire(Worker* w) {
  if (opts_.active_expire_interval_ms == 0) return;
  const uint64_t now = NowMicros();
  const uint64_t interval_us = opts_.active_expire_interval_ms * 1000;
  if (w->last_expire_micros != 0 &&
      now < w->last_expire_micros + interval_us) {
    return;
  }
  w->last_expire_micros = now;
  // Cheap gate for TTL-free workloads: after the startup probe, skip the
  // cycle entirely until some connection writes a TTL. (A database carrying
  // only not-yet-expired TTLs from a previous run is rediscovered the first
  // time any TTL command runs; until then those keys expire lazily.)
  if (expire_probe_done_ && !ttl_seen_.load(std::memory_order_relaxed)) {
    return;
  }
  const uint64_t begin =
      std::max<uint64_t>(expire_horizon_.load(std::memory_order_relaxed), 1);
  if (begin >= now) return;
  std::vector<SecondaryHit> hits;
  ReadOptions ro;
  ro.fill_page_cache = false;
  Status s = db_->SecondaryRangeLookup(ro, begin, now, &hits);
  const bool first_probe = !expire_probe_done_;
  expire_probe_done_ = true;
  if (!s.ok()) return;  // degraded engine: retry next cycle
  if (first_probe && !hits.empty()) {
    ttl_seen_.store(true, std::memory_order_relaxed);
  }
  if (hits.empty()) {
    expire_horizon_.store(now, std::memory_order_relaxed);
    return;
  }
  bool all_ok = true;
  uint64_t deleted = 0;
  const size_t chunk = std::max<size_t>(1, opts_.active_expire_chunk);
  for (size_t base = 0; base < hits.size(); base += chunk) {
    const size_t limit = std::min(hits.size(), base + chunk);
    if (txn_supported_) {
      // Validated path: txn.Get puts each key in the read set, so a SET
      // racing between the lookup and the commit aborts the chunk (Busy)
      // and the window is retried next cycle — an expired key can never
      // clobber a concurrent refresh.
      OptimisticTransaction txn(db_);
      ReadOptions tro;
      std::unique_ptr<Iterator> it = txn.NewIterator(tro);
      size_t staged = 0;
      std::string val;
      for (size_t i = base; i < limit; i++) {
        const std::string& key = hits[i].key;
        if (!txn.Get(tro, key, &val).ok()) continue;  // already gone
        it->Seek(key);  // txn.Get has no delete_key out-param; re-read it
        if (!it->Valid() || !(it->key() == Slice(key))) continue;
        const uint64_t dk = it->delete_key();
        if (dk == 0 || dk > now) continue;  // refreshed with a later expiry
        (void)txn.Delete(key);
        staged++;
      }
      if (staged > 0) {
        if (txn.Commit().ok()) {
          deleted += staged;
        } else {
          all_ok = false;  // conflict: leave the window for a retry
        }
      } else {
        (void)txn.Rollback();
      }
    } else {
      // ShardedDB has no transactions: re-verify against latest and delete
      // in one batch. A SET racing into the microseconds between re-check
      // and commit can be lost, but only for a key already past its
      // deadline — the refreshed value was racing its own expiration.
      WriteBatch batch;
      size_t staged = 0;
      uint64_t dk = 0;
      std::string val;
      for (size_t i = base; i < limit; i++) {
        const std::string& key = hits[i].key;
        Status g = db_->GetWithDeleteKey(ReadOptions(), key, &val, &dk);
        if (!g.ok() || dk == 0 || dk > now) continue;
        batch.Delete(key);
        staged++;
      }
      if (staged > 0) {
        if (db_->Write(WriteOptions(), &batch).ok()) {
          deleted += staged;
        } else {
          all_ok = false;
        }
      }
    }
  }
  net_stats_.net_keys_expired_active.fetch_add(deleted,
                                               std::memory_order_relaxed);
  // Advance only when every chunk landed, so failures are retried.
  if (all_ok) expire_horizon_.store(now, std::memory_order_relaxed);
}

}  // namespace server
}  // namespace lethe
