#ifndef LETHE_SERVER_RING_BUFFER_H_
#define LETHE_SERVER_RING_BUFFER_H_

#include <cstddef>
#include <cstring>
#include <vector>

namespace lethe {
namespace server {

/// Per-connection byte FIFO feeding the RESP parser. Readable bytes are
/// always one contiguous span, so the parser can hand out zero-copy Slices
/// into the buffer; the head slot freed by Consume is reclaimed by sliding
/// the live bytes down (amortized O(1): a byte is memmoved at most once per
/// half-buffer of consumption) instead of by wrapping, which would split
/// command frames across the seam.
///
/// Append protocol (sized for readv-style use):
///   char* p = buf.Reserve(n);   // >= n contiguous writable bytes
///   ssize_t r = read(fd, p, n);
///   if (r > 0) buf.Commit(r);
///
/// Not thread-safe; each connection belongs to one event-loop worker.
class RingBuffer {
 public:
  /// Start of the readable span (valid while size() > 0, and stable across
  /// Consume — only Reserve may move it).
  const char* data() const { return buf_.data() + read_; }

  /// Readable bytes.
  size_t size() const { return write_ - read_; }

  bool empty() const { return read_ == write_; }

  /// Total heap footprint (for overload accounting).
  size_t capacity() const { return buf_.size(); }

  /// Drops `n` bytes from the front (a fully processed frame).
  void Consume(size_t n) {
    read_ += n;
    if (read_ == write_) {
      read_ = write_ = 0;  // free compaction on an empty buffer
    }
  }

  /// Returns a writable span of at least `n` contiguous bytes at the tail,
  /// compacting or growing as needed. Pointers previously returned by
  /// data()/Reserve are invalidated.
  char* Reserve(size_t n) {
    if (buf_.size() - write_ < n) {
      // Reclaim the consumed head first; grow only if that is not enough.
      if (read_ > 0) {
        memmove(buf_.data(), buf_.data() + read_, size());
        write_ -= read_;
        read_ = 0;
      }
      if (buf_.size() - write_ < n) {
        size_t want = write_ + n;
        size_t cap = buf_.empty() ? kInitialCapacity : buf_.size();
        while (cap < want) cap *= 2;
        buf_.resize(cap);
      }
    }
    return buf_.data() + write_;
  }

  /// Publishes `n` bytes written into the last Reserve span.
  void Commit(size_t n) { write_ += n; }

  /// Releases the heap allocation (used when parking idle connections).
  void ShrinkToFit() {
    if (empty() && buf_.size() > kInitialCapacity) {
      buf_.clear();
      buf_.shrink_to_fit();
    }
  }

 private:
  static constexpr size_t kInitialCapacity = 16 * 1024;

  std::vector<char> buf_;
  size_t read_ = 0;   // first readable byte
  size_t write_ = 0;  // first writable byte
};

}  // namespace server
}  // namespace lethe

#endif  // LETHE_SERVER_RING_BUFFER_H_
