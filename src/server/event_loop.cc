#include "src/server/event_loop.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lethe {
namespace server {

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wakeup_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ >= 0 && wakeup_fd_ >= 0) {
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // nullptr tag = the wakeup fd
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) != 0) {
      close(wakeup_fd_);
      wakeup_fd_ = -1;
    }
  }
}

EventLoop::~EventLoop() {
  if (wakeup_fd_ >= 0) close(wakeup_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status EventLoop::Add(int fd, uint32_t events, void* tag) {
  struct epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.ptr = tag;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::IOError(strerror(errno));
  }
  return Status::OK();
}

Status EventLoop::Mod(int fd, uint32_t events, void* tag) {
  struct epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.ptr = tag;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::IOError(strerror(errno));
  }
  return Status::OK();
}

void EventLoop::Del(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

int EventLoop::Poll(int timeout_ms, std::vector<struct epoll_event>* events) {
  events->resize(kMaxEventsPerPoll);
  int n;
  do {
    n = epoll_wait(epoll_fd_, events->data(), kMaxEventsPerPoll, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    events->clear();
    return -1;
  }
  // Filter out the wakeup fd (drain it so it does not retrigger).
  int out = 0;
  for (int i = 0; i < n; i++) {
    if ((*events)[i].data.ptr == nullptr) {
      uint64_t junk;
      while (read(wakeup_fd_, &junk, sizeof(junk)) > 0) {
      }
      continue;
    }
    (*events)[out++] = (*events)[i];
  }
  events->resize(out);
  return out;
}

void EventLoop::Wakeup() {
  uint64_t one = 1;
  // write(2) on an eventfd is async-signal-safe; a full counter (EAGAIN)
  // already guarantees the poller will wake.
  ssize_t r = write(wakeup_fd_, &one, sizeof(one));
  (void)r;
}

}  // namespace server
}  // namespace lethe
