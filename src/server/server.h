#ifndef LETHE_SERVER_SERVER_H_
#define LETHE_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/db.h"
#include "src/core/statistics.h"
#include "src/server/command_table.h"
#include "src/server/resp.h"
#include "src/util/clock.h"

namespace lethe {
namespace server {

/// Front-end knobs. The engine itself is configured by the lethe::Options
/// used to open the DB handed to RespServer; recommended serving setup is
/// background mode (inline_compactions = false), a memory budget, and —
/// for multi-core boxes — num_shards > 1 (the server is shard-agnostic:
/// ShardedDB hides routing behind the same DB interface).
struct ServerOptions {
  /// IPv4 address to bind. Default: loopback.
  std::string host = "127.0.0.1";

  /// TCP port; 0 asks the kernel for an ephemeral port (query it with
  /// RespServer::port() after Start — used by tests and the bench).
  uint16_t port = 6379;

  /// Event-loop worker threads. Each worker owns its own epoll instance
  /// and its own listen socket bound with SO_REUSEPORT (listen-socket
  /// sharding: the kernel spreads incoming connections across workers, so
  /// accept never serializes on one thread). A connection lives on one
  /// worker for its lifetime; workers meet only inside the engine's
  /// group-commit queue, where their per-turn batches merge.
  int num_workers = 2;

  int listen_backlog = 511;

  /// Admission control: connections over this cap are greeted with an
  /// error and closed immediately (counted in net_connections_rejected).
  int max_connections = 10000;

  /// Slow-client bound: a connection whose unsent reply backlog exceeds
  /// this is dropped (counted in net_slow_client_disconnects) — one
  /// unread SCAN firehose must not hold reply memory hostage.
  size_t max_output_buffer_bytes = 64ull << 20;

  /// Upper bound on one command frame's encoded size; also caps a single
  /// bulk argument. Oversized requests get a protocol error and a close.
  size_t max_request_bytes = 32ull << 20;

  /// Maximum arguments in one command frame.
  size_t max_args_per_command = 128 * 1024;

  /// Eager-commit caps for the per-turn coalesced WriteBatch: when a turn
  /// stages this many operations (or payload bytes) the batch is committed
  /// mid-turn, bounding both staged memory and the ack latency of the
  /// earliest writer in a very deep pipeline.
  size_t max_batch_ops = 4096;
  size_t max_batch_bytes = 4ull << 20;

  /// Read commands execute against a per-connection snapshot pinned at the
  /// first read of each event-loop turn (a cross-shard consistent cut on
  /// ShardedDB) and released at turn end — reads within one pipelined
  /// drain are mutually consistent and include the connection's own
  /// committed writes. false reads latest-committed without pinning.
  bool snapshot_reads = true;

  /// Request a WAL sync for every coalesced batch (group commit still
  /// amortizes the sync across every writer in the commit group).
  bool sync_writes = false;

  /// Period of the active TTL expiry cycle run by worker 0; 0 disables it
  /// (expired keys are then only filtered lazily on read, never
  /// reclaimed). See docs/architecture.md "Serving" for the mechanism
  /// (SecondaryRangeLookup over the expired delete-key window +
  /// conflict-validated deletes).
  uint64_t active_expire_interval_ms = 100;

  /// Keys deleted per transaction/batch inside one expiry cycle.
  size_t active_expire_chunk = 256;

  /// How long shutdown keeps flushing buffered replies before closing
  /// connections that are not draining.
  uint64_t drain_timeout_ms = 1000;

  /// Time source for TTL arithmetic. MUST be the same clock domain as the
  /// DB's Options::clock, because expirations are stored in the entry's
  /// 64-bit delete key as an absolute NowMicros deadline. nullptr =
  /// SystemClock::Default() (also the DB default).
  Clock* clock = nullptr;
};

/// A RESP (Redis-protocol) serving layer over any lethe::DB.
///
/// Architecture (docs/architecture.md "Serving" has the full picture):
///   - num_workers event-loop threads; level-triggered accept on per-worker
///     SO_REUSEPORT listen sockets, edge-triggered nonblocking reads/writes
///     on connections.
///   - An incremental zero-copy RESP parser decodes pipelined frames
///     straight out of each connection's ring buffer.
///   - Write commands from ALL connections drained in one event-loop turn
///     coalesce into ONE WriteBatch fed to DB::Write — which itself merges
///     concurrently arriving workers' batches via leader/follower group
///     commit, so network batching multiplies WAL batching.
///   - Replies to staged writes are withheld until their batch commits
///     (acknowledgement implies durability-as-configured). Point reads
///     from a connection with staged writes are answered from a
///     per-connection read-your-writes overlay instead of forcing the
///     batch to commit, so mixed read/write pipelines still coalesce;
///     only iterator-shaped commands (SCAN, DBSIZE, LETHE.PURGE) force
///     the commit. Per-connection command order is preserved exactly,
///     including when a commit fails mid-pipeline.
///   - TTLs map onto the engine's secondary delete key: the expiry
///     deadline in NowMicros, 0 = no expiry. Reads filter expired entries
///     lazily; worker 0 periodically harvests the expired delete-key
///     window via SecondaryRangeLookup and deletes those keys (validated
///     by an optimistic transaction where the engine supports it).
///
/// Thread-safe: Start once; RequestStop/Stop from any thread or signal
/// handler context (RequestStop only flips an atomic and writes eventfds).
/// The DB must outlive the server and stay open until Stop/Join returns.
class RespServer {
 public:
  RespServer(DB* db, const ServerOptions& options);
  ~RespServer();

  RespServer(const RespServer&) = delete;
  RespServer& operator=(const RespServer&) = delete;

  /// Binds the listen sockets and spawns the worker threads.
  Status Start();

  /// Begins graceful shutdown: stop accepting, commit staged batches,
  /// flush buffered replies (bounded by drain_timeout_ms), release pinned
  /// snapshots, close connections. Async-signal-safe; returns immediately.
  void RequestStop();

  /// RequestStop + Join.
  void Stop();

  /// Waits for the worker threads to exit.
  void Join();

  /// The bound TCP port (after a successful Start).
  uint16_t port() const { return port_; }

  bool stopping() const {
    return stopping_.load(std::memory_order_acquire);
  }

  int connection_count() const {
    return conn_count_.load(std::memory_order_relaxed);
  }

  /// Server-side counters (the net_* family plus the pipeline-depth and
  /// batch-size histograms). Engine counters live in db()->stats().
  const Statistics& net_stats() const { return net_stats_; }

  /// net_stats() merged with the engine's counters — one view of the whole
  /// parse → coalesce → group-commit pipeline.
  Statistics StatsSnapshot() const;

  DB* db() const { return db_; }

 private:
  struct Connection;
  struct Worker;

  /// One entry in a connection's read-your-writes overlay: the latest
  /// value this connection staged for a key in the current (uncommitted)
  /// turn batch. Reads consult the overlay before the engine, so pipelined
  /// read/write mixes never force a mid-turn batch commit — which is what
  /// lets deep pipelines keep coalescing into large group commits.
  struct StagedWrite {
    bool deleted = false;
    uint64_t delete_key = 0;
    std::string value;
  };

  void WorkerMain(Worker* w);
  void AcceptReady(Worker* w);
  void ReadAndProcess(Worker* w, Connection* c);
  void ProcessInput(Worker* w, Connection* c);
  void ExecuteCommand(Worker* w, Connection* c,
                      const std::vector<Slice>& argv);
  void EndTurn(Worker* w);
  void CommitTurnBatch(Worker* w);
  void FlushOutput(Worker* w, Connection* c);
  void CloseConnection(Worker* w, Connection* c);
  void DrainOnStop(Worker* w);
  void MaybeActiveExpire(Worker* w);

  void EnsureConnCommitted(Worker* w, Connection* c);
  void MaybeCommitEagerly(Worker* w);
  void EnsureSnapshot(Worker* w, Connection* c);
  void ReleaseConnSnapshot(Connection* c);
  void StageWriteReply(Worker* w, Connection* c);
  void FinishImmediateReply(Connection* c);
  void FinishWriteReply(Connection* c);
  const StagedWrite* OverlayFind(Connection* c, const Slice& key) const;
  void OverlayPut(Connection* c, const Slice& key, uint64_t delete_key,
                  const Slice& value);
  void OverlayDelete(Connection* c, const Slice& key);
  void Touch(Worker* w, Connection* c);
  void ProtocolError(Worker* w, Connection* c, const std::string& msg);

  // Command handlers (argv[0] is the command name).
  void CmdGet(Worker* w, Connection* c, const std::vector<Slice>& argv);
  void CmdSet(Worker* w, Connection* c, const std::vector<Slice>& argv);
  void CmdDelOrExists(Worker* w, Connection* c,
                      const std::vector<Slice>& argv, bool is_del);
  void CmdMGet(Worker* w, Connection* c, const std::vector<Slice>& argv);
  void CmdMSet(Worker* w, Connection* c, const std::vector<Slice>& argv);
  void CmdScan(Worker* w, Connection* c, const std::vector<Slice>& argv);
  void CmdExpire(Worker* w, Connection* c, const std::vector<Slice>& argv);
  void CmdTtl(Worker* w, Connection* c, const std::vector<Slice>& argv);
  void CmdPersist(Worker* w, Connection* c, const std::vector<Slice>& argv);
  void CmdInfo(Worker* w, Connection* c, const std::vector<Slice>& argv);
  void CmdLethePurge(Worker* w, Connection* c,
                     const std::vector<Slice>& argv);

  std::string BuildInfo(const Slice& section);

  uint64_t NowMicros() const { return clock_->NowMicros(); }
  static bool IsExpired(uint64_t delete_key, uint64_t now) {
    return delete_key != 0 && delete_key <= now;
  }

  DB* const db_;
  const ServerOptions opts_;
  Clock* clock_ = nullptr;
  RespParser::Limits parser_limits_;
  uint16_t port_ = 0;
  bool started_ = false;
  bool txn_supported_ = false;
  uint64_t start_micros_ = 0;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> conn_count_{0};

  // TTL bookkeeping for the active expiry cycle (worker 0 only, except the
  // ttl_seen_ hint which any worker may set).
  std::atomic<bool> ttl_seen_{false};
  bool expire_probe_done_ = false;
  std::atomic<uint64_t> expire_horizon_{0};  // read by INFO on any worker

  mutable Statistics net_stats_;
};

}  // namespace server
}  // namespace lethe

#endif  // LETHE_SERVER_SERVER_H_
