#include "src/server/resp.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace lethe {
namespace server {

namespace {

// Parses the integer of a "*123" / "$123" header body (no sign besides an
// optional leading '-', digits only). Returns false on malformed input.
bool ParseHeaderInt(const char* p, size_t len, long long* out) {
  if (len == 0 || len > 19) return false;
  bool neg = false;
  size_t i = 0;
  if (p[0] == '-') {
    neg = true;
    i = 1;
    if (len == 1) return false;
  }
  long long v = 0;
  for (; i < len; i++) {
    if (p[i] < '0' || p[i] > '9') return false;
    v = v * 10 + (p[i] - '0');
  }
  *out = neg ? -v : v;
  return true;
}

}  // namespace

RespParser::Result RespParser::Parse(const RingBuffer& buf,
                                     size_t* frame_bytes) {
  const char* data = buf.data();
  const size_t size = buf.size();

  // Array header: "*<argc>\r\n".
  if (args_expected_ < 0) {
    if (size == 0) return Result::kNeedMore;
    if (data[0] != '*') {
      // An inline command (e.g. "PING\r\n" typed into netcat) or stray
      // bytes. We serve the framed protocol only: error and close.
      return Fail("inline commands are not supported");
    }
    const char* nl = static_cast<const char*>(
        memchr(data + 1, '\n', std::min(size, kMaxHeaderBytes) - 1));
    if (nl == nullptr) {
      if (size >= kMaxHeaderBytes) return Fail("invalid multibulk length");
      return Result::kNeedMore;
    }
    size_t line_end = static_cast<size_t>(nl - data);  // index of '\n'
    long long argc = 0;
    if (line_end < 2 || data[line_end - 1] != '\r' ||
        !ParseHeaderInt(data + 1, line_end - 2, &argc) || argc <= 0 ||
        static_cast<size_t>(argc) > limits_.max_args) {
      return Fail("invalid multibulk length");
    }
    args_expected_ = argc;
    pos_ = line_end + 1;
    spans_.clear();
  }

  // Bulk arguments: "$<len>\r\n<bytes>\r\n" x argc.
  while (static_cast<long long>(spans_.size()) < args_expected_) {
    if (bulk_len_ < 0) {
      if (pos_ >= size) return Result::kNeedMore;
      if (data[pos_] != '$') return Fail("expected '$', got garbage");
      size_t avail = std::min(size - pos_, kMaxHeaderBytes);
      const char* nl = static_cast<const char*>(
          memchr(data + pos_ + 1, '\n', avail - 1));
      if (nl == nullptr) {
        if (avail >= kMaxHeaderBytes) return Fail("invalid bulk length");
        return Result::kNeedMore;
      }
      size_t line_end = static_cast<size_t>(nl - data);
      long long len = 0;
      if (line_end < pos_ + 2 || data[line_end - 1] != '\r' ||
          !ParseHeaderInt(data + pos_ + 1, line_end - pos_ - 2, &len) ||
          len < 0 || static_cast<size_t>(len) > limits_.max_bulk_bytes) {
        return Fail("invalid bulk length");
      }
      bulk_len_ = len;
      pos_ = line_end + 1;
    }
    // Payload + trailing CRLF.
    size_t need = static_cast<size_t>(bulk_len_) + 2;
    if (size - pos_ < need) return Result::kNeedMore;
    if (data[pos_ + bulk_len_] != '\r' || data[pos_ + bulk_len_ + 1] != '\n') {
      return Fail("bulk string missing trailing CRLF");
    }
    spans_.emplace_back(pos_, static_cast<size_t>(bulk_len_));
    pos_ += need;
    bulk_len_ = -1;
  }

  argv_.clear();
  for (const auto& [off, len] : spans_) {
    argv_.emplace_back(data + off, len);
  }
  *frame_bytes = pos_;
  return Result::kCommand;
}

void AppendSimpleString(std::string* out, const Slice& s) {
  out->push_back('+');
  out->append(s.data(), s.size());
  out->append("\r\n");
}

void AppendError(std::string* out, const Slice& msg) {
  out->push_back('-');
  // CR/LF inside an error message would desync the protocol.
  for (size_t i = 0; i < msg.size(); i++) {
    char c = msg[i];
    out->push_back((c == '\r' || c == '\n') ? ' ' : c);
  }
  out->append("\r\n");
}

void AppendInteger(std::string* out, long long v) {
  char tmp[32];
  int n = snprintf(tmp, sizeof(tmp), ":%lld\r\n", v);
  out->append(tmp, static_cast<size_t>(n));
}

void AppendBulkString(std::string* out, const Slice& s) {
  char tmp[32];
  int n = snprintf(tmp, sizeof(tmp), "$%zu\r\n", s.size());
  out->append(tmp, static_cast<size_t>(n));
  out->append(s.data(), s.size());
  out->append("\r\n");
}

void AppendNullBulkString(std::string* out) { out->append("$-1\r\n"); }

void AppendArrayHeader(std::string* out, size_t n) {
  char tmp[32];
  int len = snprintf(tmp, sizeof(tmp), "*%zu\r\n", n);
  out->append(tmp, static_cast<size_t>(len));
}

int RespReplyScanner::FinishValue() {
  int completed = 0;
  // The finished scalar closes enclosing arrays as their last element.
  for (;;) {
    if (array_stack_.empty()) {
      replies_seen_++;
      completed++;
      return completed;
    }
    if (--array_stack_.back() > 0) return completed;
    array_stack_.pop_back();  // this array is itself a finished value
  }
}

int RespReplyScanner::Feed(const char* data, size_t len) {
  int completed = 0;
  size_t i = 0;
  while (i < len) {
    switch (state_) {
      case State::kType: {
        char t = data[i];
        if (t != '+' && t != '-' && t != ':' && t != '$' && t != '*') {
          return -1;
        }
        line_type_ = t;
        line_.clear();
        state_ = State::kLine;
        i++;
        break;
      }
      case State::kLine: {
        const char* nl =
            static_cast<const char*>(memchr(data + i, '\n', len - i));
        size_t take = (nl == nullptr) ? len - i : (nl - data) - i + 1;
        line_.append(data + i, take);
        i += take;
        if (nl == nullptr) break;  // line still incomplete
        // Full line (excluding trailing CRLF) is in line_.
        if (line_.size() < 2 || line_[line_.size() - 2] != '\r') return -1;
        line_.resize(line_.size() - 2);
        if (line_type_ == '+' || line_type_ == '-' || line_type_ == ':') {
          state_ = State::kType;
          completed += FinishValue();
        } else {
          long long n = 0;
          if (!ParseHeaderInt(line_.data(), line_.size(), &n)) return -1;
          if (line_type_ == '$') {
            if (n < 0) {  // null bulk
              state_ = State::kType;
              completed += FinishValue();
            } else {
              bulk_remaining_ = n + 2;  // payload + CRLF
              state_ = State::kBulkBody;
            }
          } else {  // '*'
            state_ = State::kType;
            if (n <= 0) {  // empty or null array is a complete value
              completed += FinishValue();
            } else {
              array_stack_.push_back(n);
            }
          }
        }
        break;
      }
      case State::kBulkBody: {
        size_t take = std::min(static_cast<size_t>(bulk_remaining_), len - i);
        bulk_remaining_ -= static_cast<long long>(take);
        i += take;
        if (bulk_remaining_ == 0) {
          state_ = State::kType;
          completed += FinishValue();
        }
        break;
      }
    }
  }
  return completed;
}

}  // namespace server
}  // namespace lethe
