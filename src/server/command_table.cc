#include "src/server/command_table.h"

#include <cctype>
#include <string_view>
#include <unordered_map>

namespace lethe {
namespace server {

namespace {

const std::unordered_map<std::string_view, CommandInfo>& Table() {
  static const auto* table = new std::unordered_map<std::string_view,
                                                    CommandInfo>{
      // name            cmd              min  max  write
      {"GET", {Cmd::kGet, 2, 2, false}},
      {"SET", {Cmd::kSet, 3, 6, true}},
      {"DEL", {Cmd::kDel, 2, -1, true}},
      {"EXISTS", {Cmd::kExists, 2, -1, false}},
      {"MGET", {Cmd::kMGet, 2, -1, false}},
      {"MSET", {Cmd::kMSet, 3, -1, true}},
      {"SCAN", {Cmd::kScan, 2, 6, false}},
      {"EXPIRE", {Cmd::kExpire, 3, 3, true}},
      {"TTL", {Cmd::kTtl, 2, 2, false}},
      {"PERSIST", {Cmd::kPersist, 2, 2, true}},
      {"PING", {Cmd::kPing, 1, 2, false}},
      {"ECHO", {Cmd::kEcho, 2, 2, false}},
      {"QUIT", {Cmd::kQuit, 1, 1, false}},
      {"SELECT", {Cmd::kSelect, 2, 2, false}},
      {"COMMAND", {Cmd::kCommand, 1, -1, false}},
      {"INFO", {Cmd::kInfo, 1, 2, false}},
      {"DBSIZE", {Cmd::kDbSize, 1, 1, false}},
      {"SHUTDOWN", {Cmd::kShutdown, 1, 2, false}},
      {"LETHE.PURGE", {Cmd::kLethePurge, 3, 3, false}},
  };
  return *table;
}

}  // namespace

const CommandInfo* LookupCommand(const Slice& name, std::string* scratch) {
  if (name.size() > 32) return nullptr;  // longest real name is far shorter
  scratch->clear();
  for (size_t i = 0; i < name.size(); i++) {
    scratch->push_back(
        static_cast<char>(toupper(static_cast<unsigned char>(name[i]))));
  }
  const auto& table = Table();
  auto it = table.find(std::string_view(*scratch));
  return it == table.end() ? nullptr : &it->second;
}

}  // namespace server
}  // namespace lethe
