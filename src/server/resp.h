#ifndef LETHE_SERVER_RESP_H_
#define LETHE_SERVER_RESP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/server/ring_buffer.h"
#include "src/util/slice.h"

namespace lethe {
namespace server {

/// Incremental zero-copy parser for RESP command frames (the multi-bulk
/// request form every Redis client sends: `*N\r\n` followed by N bulk
/// strings `$len\r\n<bytes>\r\n`).
///
/// The parser is resumable: feed it the connection's RingBuffer whenever
/// bytes arrive; kNeedMore means the frame is incomplete and the scan
/// position is retained, so a frame split at any byte boundary costs no
/// re-scanning beyond the (length-capped) header line it stopped inside.
/// On kCommand the argv() Slices point straight into the buffer — no
/// per-command allocation; the argv vector and span list are reused across
/// frames. The caller must finish with the Slices before Consume()ing the
/// frame and Reset()ing the parser.
///
/// Protocol errors (inline commands, bad length headers, limit violations)
/// return kError with a message for the client; RESP has no way to resync
/// after a malformed frame, so the connection must be closed once the error
/// is written out — exactly what Redis does.
class RespParser {
 public:
  struct Limits {
    /// Maximum arguments in one command frame.
    size_t max_args = 128 * 1024;
    /// Maximum bytes in one bulk-string argument.
    size_t max_bulk_bytes = 16ull << 20;
  };

  enum class Result {
    kCommand,   // one complete frame parsed; argv() valid
    kNeedMore,  // incomplete frame; call again after more bytes arrive
    kError,     // protocol error; error() valid, close after replying
  };

  RespParser() = default;
  explicit RespParser(const Limits& limits) : limits_(limits) {}

  /// Attempts to parse one complete command frame starting at buf.data().
  /// On kCommand, *frame_bytes is the encoded frame length: process argv(),
  /// then buf.Consume(*frame_bytes) and Reset().
  Result Parse(const RingBuffer& buf, size_t* frame_bytes);

  /// Arguments of the last kCommand result (views into the buffer).
  const std::vector<Slice>& argv() const { return argv_; }

  /// Human-readable message for the last kError result (no "ERR " prefix).
  const std::string& error() const { return error_; }

  /// Forgets all frame state. Call after consuming a parsed frame.
  void Reset() {
    pos_ = 0;
    args_expected_ = -1;
    bulk_len_ = -1;
    spans_.clear();
  }

 private:
  Result Fail(const char* msg) {
    error_ = msg;
    return Result::kError;
  }

  // A RESP length header ("*123\r\n" / "$123\r\n") is tiny; anything longer
  // is garbage and refusing it also bounds the resume re-scan.
  static constexpr size_t kMaxHeaderBytes = 32;

  Limits limits_;
  size_t pos_ = 0;            // scan offset relative to buf.data()
  long long args_expected_ = -1;  // -1: array header not yet parsed
  long long bulk_len_ = -1;       // -1: current bulk header not yet parsed
  std::vector<std::pair<size_t, size_t>> spans_;  // parsed arg offsets/lens
  std::vector<Slice> argv_;
  std::string error_;
};

/// Reply serialization: appends RESP-encoded replies to a reusable output
/// string (the connection's write buffer).
void AppendSimpleString(std::string* out, const Slice& s);
void AppendError(std::string* out, const Slice& msg);  // adds the leading '-'
void AppendInteger(std::string* out, long long v);
void AppendBulkString(std::string* out, const Slice& s);
void AppendNullBulkString(std::string* out);
void AppendArrayHeader(std::string* out, size_t n);

/// Counts complete RESP replies in a byte stream — the client half of the
/// protocol, used by the pipelined bench/example clients to know when a
/// window of in-flight commands has fully returned, and by tests to frame
/// server output. Handles all five reply types including nested arrays;
/// resumable across arbitrary split points.
class RespReplyScanner {
 public:
  /// Scans `data`, returning the number of top-level replies that completed.
  /// Bytes may carry a reply across calls. Returns -1 on malformed input.
  int Feed(const char* data, size_t len);

  uint64_t replies_seen() const { return replies_seen_; }

 private:
  // State of the innermost value being scanned.
  enum class State {
    kType,      // expecting a type byte
    kLine,      // consuming a line up to '\n' (+ - : and length headers)
    kBulkBody,  // consuming bulk payload + trailing CRLF
  };

  State state_ = State::kType;
  char line_type_ = 0;
  std::string line_;           // accumulated header/line bytes (small)
  long long bulk_remaining_ = 0;
  std::vector<long long> array_stack_;  // elements still owed per open array
  uint64_t replies_seen_ = 0;

  // Closes the just-finished value, popping completed arrays; returns how
  // many *top-level* replies that completed.
  int FinishValue();
};

}  // namespace server
}  // namespace lethe

#endif  // LETHE_SERVER_RESP_H_
