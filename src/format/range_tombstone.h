#ifndef LETHE_FORMAT_RANGE_TOMBSTONE_H_
#define LETHE_FORMAT_RANGE_TOMBSTONE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/format/entry.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace lethe {

/// A range delete on the sort key: logically deletes every key in
/// [begin_key, end_key) with sequence number < seq. Stored in a dedicated
/// per-file block (not inline with data pages), matching the RocksDB
/// DeleteRange design the paper builds on. `time` records when the tombstone
/// entered the memtable, which FADE uses for exact range-tombstone ages.
struct RangeTombstone {
  std::string begin_key;
  std::string end_key;
  SequenceNumber seq = 0;
  uint64_t time = 0;

  bool Contains(const Slice& user_key) const {
    return Slice(begin_key).compare(user_key) <= 0 &&
           user_key.compare(Slice(end_key)) < 0;
  }
};

/// Serializes a list of range tombstones into a block.
void EncodeRangeTombstones(const std::vector<RangeTombstone>& tombstones,
                           std::string* dst);
Status DecodeRangeTombstones(Slice input,
                             std::vector<RangeTombstone>* tombstones);

/// In-memory set of range tombstones consulted by reads and compactions.
/// Keeps tombstones sorted by begin key; Covers() answers "is (key, seq)
/// logically deleted by any tombstone in this set".
class RangeTombstoneSet {
 public:
  void Add(const RangeTombstone& tombstone);
  void AddAll(const std::vector<RangeTombstone>& tombstones);

  bool empty() const { return tombstones_.empty(); }
  size_t size() const { return tombstones_.size(); }
  const std::vector<RangeTombstone>& tombstones() const { return tombstones_; }

  /// True if some tombstone with `seq` < tombstone seq <= `max_seq`
  /// contains `user_key`. `max_seq` bounds visibility for snapshot reads:
  /// tombstones written after the snapshot must not delete entries under it.
  bool Covers(const Slice& user_key, SequenceNumber seq,
              SequenceNumber max_seq = kMaxSequenceNumber) const;

  /// Highest tombstone seq <= `max_seq` covering `user_key`, or 0 if none.
  SequenceNumber MaxCoverSeq(
      const Slice& user_key,
      SequenceNumber max_seq = kMaxSequenceNumber) const;

  /// Smallest tombstone seq strictly greater than `seq` covering
  /// `user_key`, or 0 if none. Compaction's snapshot-aware drop rule wants
  /// the *nearest* covering delete above a version: if even that one is
  /// separated from the version by a pinned snapshot, every higher cover
  /// is too, and the version must survive for that snapshot.
  SequenceNumber MinCoverSeqAbove(const Slice& user_key,
                                  SequenceNumber seq) const;

 private:
  std::vector<RangeTombstone> tombstones_;  // sorted by begin_key
};

/// RocksDB-style fragmented form of a tombstone set: the key space is split
/// at every tombstone boundary into disjoint fragments, each carrying the
/// ascending (deduplicated) list of seqs of the tombstones covering it.
/// Cover queries become one binary search over the fragment boundaries plus
/// one binary search in that fragment's seq list — O(log F + log S) however
/// many tombstones pile up on a key, where the naive set degrades to a
/// linear walk. Immutable once built, so one instance can be shared lock-
/// free across readers (per-table copies are cached in the block cache, the
/// memtable builds one per sealed chunk).
///
/// All three queries are answer-identical to RangeTombstoneSet's — the
/// seq list of the fragment containing `user_key` is exactly the multiset
/// {t.seq : t.Contains(user_key)}, so max-below-bound, exists-in-window,
/// and min-above reduce to probes of one sorted array. Bit-exactness of
/// MinCoverSeqAbove in particular is what compaction's snapshot-stripe drop
/// rule relies on (see docs/architecture.md "Range tombstones").
class FragmentedRangeTombstoneList {
 public:
  FragmentedRangeTombstoneList() = default;
  explicit FragmentedRangeTombstoneList(
      const std::vector<RangeTombstone>& tombstones);

  bool empty() const { return keys_.empty(); }

  /// Number of disjoint fragments (including coverage gaps between
  /// non-overlapping tombstones, which carry an empty seq list).
  size_t num_fragments() const {
    return keys_.empty() ? 0 : keys_.size() - 1;
  }

  /// Same contract as RangeTombstoneSet::Covers.
  bool Covers(const Slice& user_key, SequenceNumber seq,
              SequenceNumber max_seq = kMaxSequenceNumber) const;

  /// Same contract as RangeTombstoneSet::MaxCoverSeq.
  SequenceNumber MaxCoverSeq(
      const Slice& user_key,
      SequenceNumber max_seq = kMaxSequenceNumber) const;

  /// Same contract as RangeTombstoneSet::MinCoverSeqAbove.
  SequenceNumber MinCoverSeqAbove(const Slice& user_key,
                                  SequenceNumber seq) const;

  /// Charge against the block-cache budget when cached per table.
  size_t ApproximateMemoryUsage() const;

 private:
  /// Seq list of the fragment containing `user_key` as [*begin, *end), or
  /// false when no fragment contains it.
  bool FragmentSeqs(const Slice& user_key, const SequenceNumber** begin,
                    const SequenceNumber** end) const;

  // Fragment i spans [keys_[i], keys_[i+1]); its covering seqs are
  // seqs_[seq_offset_[i] .. seq_offset_[i+1]), ascending and deduplicated.
  std::vector<std::string> keys_;       // sorted distinct boundary keys
  std::vector<uint32_t> seq_offset_;    // size keys_.size(); last == total
  std::vector<SequenceNumber> seqs_;
};

}  // namespace lethe

#endif  // LETHE_FORMAT_RANGE_TOMBSTONE_H_
