#ifndef LETHE_FORMAT_SSTABLE_FORMAT_H_
#define LETHE_FORMAT_SSTABLE_FORMAT_H_

#include <cstdint>

namespace lethe {

// Shared constants of the SSTable footer, used by builder and reader.
//
// File layout:
//   [data pages][filter section][rt block][index block][props block][footer]
//
// The filter section holds one *filter block per delete tile* — the
// concatenated per-page Bloom filters of that tile's pages, in page order —
// so a tile's filters form one contiguous, independently addressable unit
// that can be loaded (and evicted) through the block cache without touching
// the rest of the metadata. The index block's per-page records carry each
// filter's length; offsets are prefix sums on the read side, so moving the
// filter bytes out of the index costs zero extra file bytes. Pinned readers
// fetch [filter section .. props block] in a single contiguous read,
// preserving the one-metadata-read open (and the exact file sizes) of the
// inline-filter format.
//
// Footer layout (fixed kFooterSize bytes at the very end of the file):
//   fixed64 index_offset  | fixed32 index_len
//   fixed64 filter_offset | fixed32 rt_len
//   fixed64 props_offset  | fixed32 props_len
//   fixed32 meta_crc (crc32c over filter+rt+index+props, masked)
//   fixed64 magic
// The rt block's offset is derivable (index_offset - rt_len; the blocks are
// contiguous), which frees its fixed64 slot for the filter section's offset
// — the footer stays the classic 48 bytes.
constexpr uint64_t kTableMagic = 0x4c65746865544241ull;
constexpr size_t kFooterSize = 8 + 4 + 8 + 4 + 8 + 4 + 4 + 8;

}  // namespace lethe

#endif  // LETHE_FORMAT_SSTABLE_FORMAT_H_
