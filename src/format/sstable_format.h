#ifndef LETHE_FORMAT_SSTABLE_FORMAT_H_
#define LETHE_FORMAT_SSTABLE_FORMAT_H_

#include <cstdint>

namespace lethe {

// Shared constants of the SSTable footer, used by builder and reader.
//
// Footer layout (fixed kFooterSize bytes at the very end of the file):
//   fixed64 index_offset  | fixed32 index_len
//   fixed64 rt_offset     | fixed32 rt_len
//   fixed64 props_offset  | fixed32 props_len
//   fixed32 meta_crc (crc32c over index+rt+props blocks, masked)
//   fixed64 magic
constexpr uint64_t kTableMagic = 0x4c65746865544240ull;
constexpr size_t kFooterSize = 8 + 4 + 8 + 4 + 8 + 4 + 4 + 8;

}  // namespace lethe

#endif  // LETHE_FORMAT_SSTABLE_FORMAT_H_
