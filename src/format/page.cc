#include "src/format/page.h"

#include <cstring>

#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace lethe {

namespace {
constexpr size_t kPageHeaderSize = 4;   // fixed32 num_entries
constexpr size_t kPageTrailerSize = 4;  // fixed32 crc
}  // namespace

PageBuilder::PageBuilder(uint64_t page_size_bytes, uint32_t max_entries)
    : page_size_bytes_(page_size_bytes),
      max_entries_(max_entries),
      num_entries_(0) {
  buffer_.reserve(page_size_bytes);
}

bool PageBuilder::Add(const ParsedEntry& entry) {
  if (num_entries_ >= max_entries_) {
    return false;
  }
  size_t need = EncodedEntrySize(entry);
  if (kPageHeaderSize + buffer_.size() + need + kPageTrailerSize >
      page_size_bytes_) {
    return false;
  }
  EncodeEntry(entry, &buffer_);
  num_entries_++;
  return true;
}

std::string PageBuilder::Finish() {
  std::string page;
  page.reserve(page_size_bytes_);
  PutFixed32(&page, num_entries_);
  page.append(buffer_);
  page.resize(page_size_bytes_ - kPageTrailerSize, '\0');
  uint32_t crc = crc32c::Value(page.data(), page.size());
  PutFixed32(&page, crc32c::Mask(crc));

  buffer_.clear();
  num_entries_ = 0;
  return page;
}

Status DecodePage(Slice raw, uint64_t page_size_bytes, bool verify_checksum,
                  PageContents* out) {
  if (raw.size() != page_size_bytes) {
    return Status::Corruption("page truncated");
  }
  if (verify_checksum) {
    uint32_t stored = crc32c::Unmask(
        DecodeFixed32(raw.data() + raw.size() - kPageTrailerSize));
    uint32_t actual =
        crc32c::Value(raw.data(), raw.size() - kPageTrailerSize);
    if (stored != actual) {
      return Status::Corruption("page checksum mismatch");
    }
  }

  out->data = std::make_unique<char[]>(raw.size());
  out->raw_size = raw.size();
  memcpy(out->data.get(), raw.data(), raw.size());
  Slice body(out->data.get(), raw.size() - kPageTrailerSize);

  uint32_t num_entries;
  if (!GetFixed32(&body, &num_entries)) {
    return Status::Corruption("page header truncated");
  }
  out->entries.clear();
  out->entries.reserve(num_entries);
  for (uint32_t i = 0; i < num_entries; i++) {
    ParsedEntry entry;
    if (!DecodeEntry(&body, &entry)) {
      return Status::Corruption("page entry malformed");
    }
    out->entries.push_back(entry);
  }
  return Status::OK();
}

}  // namespace lethe
