#include "src/format/sstable_builder.h"

#include <algorithm>
#include <cassert>

#include "src/format/page.h"
#include "src/format/sstable_format.h"
#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace lethe {

SSTableBuilder::SSTableBuilder(const TableOptions& options, WritableFile* file)
    : options_(options), file_(file) {
  assert(options_.entries_per_page > 0);
  assert(options_.pages_per_tile > 0);
  tile_buffer_.reserve(static_cast<size_t>(options_.entries_per_page) *
                       options_.pages_per_tile);
}

void SSTableBuilder::Add(const ParsedEntry& entry) {
  if (!status_.ok()) {
    return;
  }
  PendingEntry pending;
  pending.user_key = entry.user_key.ToString();
  pending.delete_key = entry.delete_key;
  pending.seq = entry.seq;
  pending.type = entry.type;
  pending.value = entry.value.ToString();
  tile_buffer_.push_back(std::move(pending));

  if (props_.num_entries == 0) {
    props_.smallest_key = entry.user_key.ToString();
  } else if (entry.user_key == Slice(props_.largest_key)) {
    // Entries arrive in internal-key order, so versions of one user key are
    // adjacent here even though the weave will scatter them across a tile's
    // pages by delete key. A file holding two versions of a key can only
    // exist when a pinned snapshot kept the older one alive; flag it so the
    // reader knows "first match in page order" is not "newest version".
    props_.multi_version = true;
  }
  props_.largest_key = entry.user_key.ToString();
  props_.num_entries++;
  if (entry.IsTombstone()) {
    props_.num_point_tombstones++;
    props_.oldest_point_tombstone_seq =
        std::min(props_.oldest_point_tombstone_seq, entry.seq);
  }
  props_.min_delete_key = std::min(props_.min_delete_key, entry.delete_key);
  props_.max_delete_key = std::max(props_.max_delete_key, entry.delete_key);
  props_.smallest_seq = std::min(props_.smallest_seq, entry.seq);
  props_.largest_seq = std::max(props_.largest_seq, entry.seq);

  const size_t tile_capacity =
      static_cast<size_t>(options_.entries_per_page) * options_.pages_per_tile;
  if (tile_buffer_.size() >= tile_capacity) {
    status_ = FlushTile();
  }
}

void SSTableBuilder::AddRangeTombstone(const RangeTombstone& tombstone) {
  range_tombstones_.push_back(tombstone);
  props_.num_range_tombstones++;
  props_.oldest_range_tombstone_time =
      std::min(props_.oldest_range_tombstone_time, tombstone.time);
}

uint64_t SSTableBuilder::EstimatedSize() const {
  return data_bytes_written_ +
         (tile_buffer_.size() / options_.entries_per_page + 1) *
             options_.page_size_bytes;
}

Status SSTableBuilder::FlushTile() {
  if (tile_buffer_.empty()) {
    return Status::OK();
  }
  // The key weave: order the tile's entries by delete key, then cut into
  // pages of at most B entries (fewer when large values exhaust the page's
  // byte budget first). Consecutive pages thereby partition the tile's
  // delete-key domain. Stable sort keeps the (rare) equal-delete-key
  // entries in sort-key order.
  std::vector<const PendingEntry*> by_delete_key;
  by_delete_key.reserve(tile_buffer_.size());
  for (const PendingEntry& e : tile_buffer_) {
    by_delete_key.push_back(&e);
  }
  std::stable_sort(by_delete_key.begin(), by_delete_key.end(),
                   [](const PendingEntry* a, const PendingEntry* b) {
                     return a->delete_key < b->delete_key;
                   });

  // Byte budget per page: header (4) + entries + checksum (4).
  const uint64_t byte_budget = options_.page_size_bytes - 8;
  const uint32_t b = options_.entries_per_page;
  const uint32_t pages_before = props_.num_pages;

  std::vector<const PendingEntry*> page_entries;
  uint64_t page_bytes = 0;
  for (const PendingEntry* e : by_delete_key) {
    ParsedEntry probe;
    probe.user_key = Slice(e->user_key);
    probe.value = Slice(e->value);
    uint64_t entry_bytes = EncodedEntrySize(probe);
    if (entry_bytes > byte_budget) {
      return Status::InvalidArgument(
          "entry larger than a page: raise page_size_bytes");
    }
    if (!page_entries.empty() &&
        (page_entries.size() >= b || page_bytes + entry_bytes > byte_budget)) {
      LETHE_RETURN_IF_ERROR(WritePage(page_entries));
      page_entries.clear();
      page_bytes = 0;
    }
    page_entries.push_back(e);
    page_bytes += entry_bytes;
  }
  if (!page_entries.empty()) {
    LETHE_RETURN_IF_ERROR(WritePage(page_entries));
  }

  props_.num_tiles++;
  tile_page_counts_.push_back(props_.num_pages - pages_before);
  tile_buffer_.clear();
  return Status::OK();
}

Status SSTableBuilder::WritePage(
    std::vector<const PendingEntry*>& page_entries) {
  // Entries within the page go back to sort-key order so in-page binary
  // search on S works after a single page fetch (§4.2.1 "Page layout").
  std::sort(page_entries.begin(), page_entries.end(),
            [](const PendingEntry* a, const PendingEntry* b) {
              int c = Slice(a->user_key).compare(Slice(b->user_key));
              if (c != 0) {
                return c < 0;
              }
              return a->seq > b->seq;
            });

  PageBuilder page_builder(options_.page_size_bytes,
                           options_.entries_per_page);
  BloomFilterBuilder bloom_builder(options_.bloom_bits_per_key);
  PageMetaRecord meta;
  meta.min_sort_key = page_entries.front()->user_key;
  meta.max_sort_key = page_entries.back()->user_key;

  for (const PendingEntry* e : page_entries) {
    ParsedEntry parsed;
    parsed.user_key = Slice(e->user_key);
    parsed.delete_key = e->delete_key;
    parsed.seq = e->seq;
    parsed.type = e->type;
    parsed.value = Slice(e->value);
    if (!page_builder.Add(parsed)) {
      return Status::InvalidArgument(
          "entry does not fit in page: lower entries_per_page or raise "
          "page_size_bytes");
    }
    bloom_builder.AddKey(parsed.user_key);
    meta.min_delete_key = std::min(meta.min_delete_key, e->delete_key);
    meta.max_delete_key = std::max(meta.max_delete_key, e->delete_key);
    meta.num_entries++;
    if (parsed.IsTombstone()) {
      meta.num_tombstones++;
    }
  }

  std::string page = page_builder.Finish();
  LETHE_RETURN_IF_ERROR(file_->Append(page));
  data_bytes_written_ += page.size();
  meta.bloom = bloom_builder.Finish();
  pages_.push_back(std::move(meta));
  props_.num_pages++;
  return Status::OK();
}

Status SSTableBuilder::Finish(TableProperties* props) {
  LETHE_RETURN_IF_ERROR(status_);
  LETHE_RETURN_IF_ERROR(FlushTile());

  // Filter section: one contiguous filter block per delete tile — the
  // concatenated per-page Bloom filters in page order — so each tile's
  // filters are independently addressable (and independently cacheable /
  // evictable) without touching any other metadata. Tiles are runs of
  // consecutive pages, so the section is simply every page's filter in
  // file order; the per-page lengths below locate the blocks as prefix
  // sums, costing zero bytes over the inline-filter layout.
  std::string filter_section;
  for (const PageMetaRecord& page : pages_) {
    filter_section += page.bloom;
  }

  // Range tombstone block.
  std::string rt_block;
  EncodeRangeTombstones(range_tombstones_, &rt_block);

  // Index block: tile structure (explicit per-tile page counts, since byte
  // budgets can make a tile span more pages than h), then one record per
  // page in file order. Page records store each filter's length only — the
  // bytes live in the filter section.
  std::string index_block;
  PutVarint32(&index_block, props_.num_pages);
  PutVarint32(&index_block, options_.pages_per_tile);
  PutVarint32(&index_block, props_.multi_version ? 1 : 0);
  PutVarint32(&index_block, static_cast<uint32_t>(tile_page_counts_.size()));
  for (uint32_t count : tile_page_counts_) {
    PutVarint32(&index_block, count);
  }
  for (const PageMetaRecord& page : pages_) {
    PutLengthPrefixedSlice(&index_block, page.min_sort_key);
    PutLengthPrefixedSlice(&index_block, page.max_sort_key);
    PutFixed64(&index_block, page.min_delete_key);
    PutFixed64(&index_block, page.max_delete_key);
    PutVarint32(&index_block, page.num_entries);
    PutVarint32(&index_block, page.num_tombstones);
    PutVarint32(&index_block, static_cast<uint32_t>(page.bloom.size()));
  }

  // Properties block.
  std::string props_block;
  PutVarint32(&props_block, props_.num_pages);
  PutVarint32(&props_block, props_.num_tiles);
  PutFixed64(&props_block, props_.num_entries);
  PutFixed64(&props_block, props_.num_point_tombstones);
  PutFixed64(&props_block, props_.num_range_tombstones);
  PutLengthPrefixedSlice(&props_block, props_.smallest_key);
  PutLengthPrefixedSlice(&props_block, props_.largest_key);
  PutFixed64(&props_block, props_.min_delete_key);
  PutFixed64(&props_block, props_.max_delete_key);
  PutFixed64(&props_block, props_.smallest_seq);
  PutFixed64(&props_block, props_.largest_seq);
  PutFixed64(&props_block, props_.oldest_point_tombstone_seq);
  PutFixed64(&props_block, props_.oldest_range_tombstone_time);

  const uint64_t filter_offset = data_bytes_written_;
  const uint64_t rt_offset = filter_offset + filter_section.size();
  const uint64_t index_offset = rt_offset + rt_block.size();
  const uint64_t props_offset = index_offset + index_block.size();

  LETHE_RETURN_IF_ERROR(file_->Append(filter_section));
  LETHE_RETURN_IF_ERROR(file_->Append(rt_block));
  LETHE_RETURN_IF_ERROR(file_->Append(index_block));
  LETHE_RETURN_IF_ERROR(file_->Append(props_block));

  // The crc covers the whole contiguous metadata region, filters included;
  // a pinned open verifies it in one pass, and a lazy index load verifies
  // it while deriving per-tile filter digests for its own later loads.
  uint32_t crc = crc32c::Value(filter_section.data(), filter_section.size());
  crc = crc32c::Extend(crc, rt_block.data(), rt_block.size());
  crc = crc32c::Extend(crc, index_block.data(), index_block.size());
  crc = crc32c::Extend(crc, props_block.data(), props_block.size());

  // rt_offset is derivable (index_offset - rt_len), so its footer slot
  // carries the filter section's offset instead — see sstable_format.h.
  std::string footer;
  PutFixed64(&footer, index_offset);
  PutFixed32(&footer, static_cast<uint32_t>(index_block.size()));
  PutFixed64(&footer, filter_offset);
  PutFixed32(&footer, static_cast<uint32_t>(rt_block.size()));
  PutFixed64(&footer, props_offset);
  PutFixed32(&footer, static_cast<uint32_t>(props_block.size()));
  PutFixed32(&footer, crc32c::Mask(crc));
  PutFixed64(&footer, kTableMagic);
  assert(footer.size() == kFooterSize);
  LETHE_RETURN_IF_ERROR(file_->Append(footer));
  LETHE_RETURN_IF_ERROR(file_->Flush());

  props_.file_size = props_offset + props_block.size() + footer.size();
  *props = props_;
  return Status::OK();
}

}  // namespace lethe
