#include "src/format/bloom.h"

#include <algorithm>
#include <cmath>

#include "src/util/hash.h"

namespace lethe {

namespace {

// Filter layout: [bit array][1 byte k]. An empty filter (no keys) is encoded
// as a single 0 byte and matches nothing.
constexpr uint64_t kBloomSeed = 0xbf58476d1ce4e5b9ull;

inline void DoubleHash(uint64_t h, uint32_t k, uint32_t bits,
                       bool set_bits, char* array, bool* may_match) {
  uint64_t delta = (h >> 33) | (h << 31);  // rotate to get second hash
  for (uint32_t i = 0; i < k; i++) {
    uint32_t bit_pos = static_cast<uint32_t>(h % bits);
    if (set_bits) {
      array[bit_pos / 8] |= static_cast<char>(1 << (bit_pos % 8));
    } else {
      if ((array[bit_pos / 8] & (1 << (bit_pos % 8))) == 0) {
        *may_match = false;
        return;
      }
    }
    h += delta;
  }
}

}  // namespace

uint32_t BloomFilter::NumProbes(uint32_t bits_per_key) {
  // k = bits_per_key * ln(2), clamped to [1, 30].
  uint32_t k = static_cast<uint32_t>(bits_per_key * 0.69314718056);
  return std::clamp<uint32_t>(k, 1, 30);
}

BloomFilterBuilder::BloomFilterBuilder(uint32_t bits_per_key)
    : bits_per_key_(bits_per_key) {}

void BloomFilterBuilder::AddKey(const Slice& key) {
  hashes_.push_back(MurmurHash64(key.data(), key.size(), kBloomSeed));
}

std::string BloomFilterBuilder::Finish() {
  std::string result;
  if (hashes_.empty()) {
    result.push_back('\0');
    return result;
  }
  uint32_t bits =
      static_cast<uint32_t>(hashes_.size()) * bits_per_key_;
  bits = std::max<uint32_t>(bits, 64);
  uint32_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  result.resize(bytes, '\0');
  uint32_t k = BloomFilter::NumProbes(bits_per_key_);
  bool unused = true;
  for (uint64_t h : hashes_) {
    DoubleHash(h, k, bits, /*set_bits=*/true, result.data(), &unused);
  }
  result.push_back(static_cast<char>(k));
  hashes_.clear();
  return result;
}

uint64_t BloomFilter::HashKey(const Slice& key) {
  return MurmurHash64(key.data(), key.size(), kBloomSeed);
}

bool BloomFilter::DigestMayMatch(uint64_t digest) const {
  if (data_.size() < 2) {
    return false;  // empty filter: page has no entries
  }
  const size_t bytes = data_.size() - 1;
  const uint32_t bits = static_cast<uint32_t>(bytes * 8);
  const uint32_t k = static_cast<unsigned char>(data_[data_.size() - 1]);
  if (k == 0 || k > 30) {
    return true;  // treat unparseable filters as match-all for safety
  }
  bool may_match = true;
  DoubleHash(digest, k, bits, /*set_bits=*/false,
             const_cast<char*>(data_.data()), &may_match);
  return may_match;
}

}  // namespace lethe
