#ifndef LETHE_FORMAT_SSTABLE_READER_H_
#define LETHE_FORMAT_SSTABLE_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/statistics.h"
#include "src/env/env.h"
#include "src/format/bloom.h"
#include "src/format/entry.h"
#include "src/format/file_meta.h"
#include "src/format/iterator.h"
#include "src/format/page.h"
#include "src/format/page_cache.h"
#include "src/format/range_tombstone.h"
#include "src/format/table_options.h"
#include "src/util/status.h"

namespace lethe {

/// Decoded per-page index record. Sort-key fences may be conservatively wide
/// after partial page drops (the on-disk index is immutable; see
/// FileMeta::dropped_pages).
struct PageInfo {
  Slice min_sort_key;
  Slice max_sort_key;
  uint64_t min_delete_key = UINT64_MAX;
  uint64_t max_delete_key = 0;
  uint32_t num_entries = 0;
  uint32_t num_tombstones = 0;
  Slice bloom;
};

/// One delete tile: `page_count` consecutive pages starting at `first_page`,
/// internally ordered by delete key. Tiles partition the file's sort-key
/// space; `min/max_sort_key` are the tile-level fence pointers on S.
struct TileInfo {
  uint32_t first_page = 0;
  uint32_t page_count = 0;
  Slice min_sort_key;
  Slice max_sort_key;
};

/// Result of a point lookup inside one table. `value` aliases the decoded
/// page pinned by `page`, so returning a result costs no copy; callers
/// materialize the bytes only at the API boundary.
struct TableGetResult {
  ValueType type = ValueType::kValue;
  SequenceNumber seq = 0;
  uint64_t delete_key = 0;
  Slice value;
  PageHandle page;  // keeps `value` alive
};

/// Which pages a secondary range delete touches in this file: full drops are
/// pages whose entire delete-key range falls inside [lo, hi) — they are
/// dropped via metadata only; partials overlap the boundary and must be read
/// and rewritten in place (0–1 per tile in the common case).
struct SecondaryDeletePlan {
  std::vector<uint32_t> full_drop_pages;
  std::vector<uint32_t> partial_pages;
};

/// Read-side SSTable handle. Immutable and thread-safe after Open; the
/// page-liveness bitmap lives in FileMeta (owned by the version) and is
/// passed into each call so that one cached reader serves all versions.
class SSTableReader {
 public:
  /// `file_number` + `page_cache` (both optional) connect the reader to the
  /// engine-wide decoded-page cache; a nullptr cache means every ReadPage
  /// performs a real Env read.
  static Status Open(const TableOptions& options,
                     std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_size,
                     std::unique_ptr<SSTableReader>* reader,
                     uint64_t file_number = 0,
                     PageCache* page_cache = nullptr);

  SSTableReader(const SSTableReader&) = delete;
  SSTableReader& operator=(const SSTableReader&) = delete;

  uint32_t num_pages() const {
    return static_cast<uint32_t>(pages_.size());
  }
  uint32_t num_tiles() const {
    return static_cast<uint32_t>(tiles_.size());
  }
  const std::vector<PageInfo>& pages() const { return pages_; }
  const std::vector<TileInfo>& tiles() const { return tiles_; }
  const std::vector<RangeTombstone>& range_tombstones() const {
    return range_tombstones_;
  }
  uint32_t pages_per_tile() const { return pages_per_tile_; }

  /// Point lookup: locates the candidate tile via the sort-key fences, then
  /// probes each live page's Bloom filter (one hash digest per probe) and
  /// binary-searches fetched pages. Returns OK with *found=false if the key
  /// is not in this table. `meta` supplies page liveness (may be nullptr).
  /// `fill_cache` = false serves cache hits but never inserts
  /// (ReadOptions::fill_page_cache).
  Status Get(const Slice& user_key, const FileMeta* meta, Statistics* stats,
             bool* found, TableGetResult* result,
             bool fill_cache = true) const;

  /// Filter-only membership probe: fences + Bloom filters, no page I/O.
  /// False means the key is definitely absent from this table. Used by
  /// FADE's blind-delete guard (§4.1.5).
  bool KeyMayExist(const Slice& user_key, const FileMeta* meta,
                   Statistics* stats) const;

  /// Produces the decoded page, from the page cache when possible (a hit
  /// costs no I/O, decode, or allocation), else via one page-sized Env read
  /// into a reusable thread-local scratch buffer. `generation` is the
  /// caller's FileMeta::page_generation (0 when no meta is in play); it
  /// fences cached decodes across in-place page rewrites. `*from_cache`
  /// (optional) reports whether the page was served without I/O, so the
  /// *_pages_read statistics keep counting real page I/Os only.
  /// `fill_cache` = false still serves hits but never inserts — for reads
  /// whose result is about to be invalidated (secondary-delete rewrites).
  Status ReadPage(uint32_t page_index, PageHandle* contents,
                  uint32_t generation = 0, bool* from_cache = nullptr,
                  bool fill_cache = true) const;

  /// Computes which pages a secondary range delete over delete keys
  /// [lo, hi) fully covers vs. partially overlaps. Metadata-only; performs
  /// no I/O. Already-dropped pages are excluded.
  void PlanSecondaryRangeDelete(uint64_t lo, uint64_t hi, const FileMeta* meta,
                                SecondaryDeletePlan* plan) const;

  /// Byte offset of a page within the file (pages are fixed-size).
  uint64_t PageOffset(uint32_t page_index) const {
    return static_cast<uint64_t>(page_index) * options_.page_size_bytes;
  }

  /// Iterator over all live entries in internal-key order. Reads one delete
  /// tile at a time (h pages), sorting it back to sort-key order in memory —
  /// compactions stream through files this way. `fill_cache` = false keeps
  /// the bulk read from populating (and churning) the decoded-page LRU;
  /// compaction inputs always pass false, user scans pass
  /// ReadOptions::fill_page_cache.
  std::unique_ptr<InternalIterator> NewIterator(const FileMeta* meta,
                                                bool fill_cache = true) const;

  const TableOptions& options() const { return options_; }

 private:
  SSTableReader(const TableOptions& options,
                std::unique_ptr<RandomAccessFile> file, uint64_t file_number,
                PageCache* page_cache)
      : options_(options),
        file_(std::move(file)),
        file_number_(file_number),
        page_cache_(page_cache) {}

  Status Init(uint64_t file_size);

  /// Index of the unique tile whose fence range may contain `user_key`, or
  /// -1 if none.
  int FindTile(const Slice& user_key) const;

  TableOptions options_;
  std::unique_ptr<RandomAccessFile> file_;
  uint64_t file_number_;
  PageCache* page_cache_;  // may be nullptr (cache disabled)

  std::string index_buffer_;  // backing store for PageInfo/TileInfo slices
  std::vector<PageInfo> pages_;
  std::vector<TileInfo> tiles_;
  std::vector<RangeTombstone> range_tombstones_;
  uint32_t pages_per_tile_ = 1;

  friend class SSTableIterator;
};

}  // namespace lethe

#endif  // LETHE_FORMAT_SSTABLE_READER_H_
