#ifndef LETHE_FORMAT_SSTABLE_READER_H_
#define LETHE_FORMAT_SSTABLE_READER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/statistics.h"
#include "src/env/env.h"
#include "src/format/bloom.h"
#include "src/format/entry.h"
#include "src/format/file_meta.h"
#include "src/format/iterator.h"
#include "src/format/page.h"
#include "src/format/page_cache.h"
#include "src/format/range_tombstone.h"
#include "src/format/table_blocks.h"
#include "src/format/table_options.h"
#include "src/util/status.h"

namespace lethe {

/// Result of a point lookup inside one table. `value` aliases the decoded
/// page pinned by `page`, so returning a result costs no copy; callers
/// materialize the bytes only at the API boundary.
struct TableGetResult {
  ValueType type = ValueType::kValue;
  SequenceNumber seq = 0;
  uint64_t delete_key = 0;
  Slice value;
  PageHandle page;  // keeps `value` alive
};

/// Which pages a secondary range delete touches in this file: full drops are
/// pages whose entire delete-key range falls inside [lo, hi) — they are
/// dropped via metadata only; partials overlap the boundary and must be read
/// and rewritten in place (0–1 per tile in the common case).
struct SecondaryDeletePlan {
  std::vector<uint32_t> full_drop_pages;
  std::vector<uint32_t> partial_pages;
};

/// Read-side SSTable handle. Immutable and thread-safe after Open; the
/// page-liveness bitmap lives in FileMeta (owned by the version) and is
/// passed into each call so that one cached reader serves all versions.
///
/// Metadata residency has two modes (Options::cache_index_and_filter_blocks):
///
///   *Pinned* (cache_metadata = false, the default): Open performs one
///   contiguous read of [filter section .. props block] and keeps the parsed
///   TableIndex — fences, tiles, range tombstones, and every page's Bloom
///   filter — resident for the reader's lifetime, exactly the paper's
///   memory-resident-filter assumption. The pages()/tiles()/... accessors
///   are valid only in this mode.
///
///   *Cached* (cache_metadata = true): Open reads only the footer. The
///   fence/index block and each tile's filter block load lazily through the
///   shared block cache (admitted at high priority), so metadata memory is
///   bounded by the cache budget and ages out under pressure; every
///   operation re-acquires what it needs via GetIndex/GetTileFilter, and a
///   strict-budget rejection simply leaves the freshly loaded block
///   unpooled for the duration of the call.
class SSTableReader {
 public:
  /// `file_number` + `page_cache` (both optional) connect the reader to the
  /// engine-wide block cache; a nullptr cache means every ReadPage performs
  /// a real Env read (and, with cache_metadata, every metadata access
  /// performs a real metadata load).
  static Status Open(const TableOptions& options,
                     std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_size,
                     std::unique_ptr<SSTableReader>* reader,
                     uint64_t file_number = 0,
                     PageCache* page_cache = nullptr,
                     bool cache_metadata = false);

  SSTableReader(const SSTableReader&) = delete;
  SSTableReader& operator=(const SSTableReader&) = delete;

  /// The table's fence/index metadata: the pinned copy, the cached block,
  /// or a freshly loaded one (inserted into the cache when allowed). The
  /// handle keeps every contained Slice alive.
  Status GetIndex(TableIndexHandle* index) const;

  /// Non-loading variant of GetIndex: the pinned index, or a
  /// cache-resident one. Returns false instead of performing any I/O —
  /// for best-effort callers (the picker's invalidation estimate) that
  /// run under the DB mutex and must not read from disk there.
  bool PeekIndex(TableIndexHandle* index) const;

  /// Tile `tile_index`'s Bloom filter block, via the cache when possible.
  /// Unused in pinned mode (filters live in the index buffer there).
  Status GetTileFilter(const TableIndex& index, uint32_t tile_index,
                       FilterBlockHandle* filter) const;

  /// The table's fragmented range-tombstone index, built lazily from the
  /// TableIndex on first use (Options::fragmented_range_tombstones). With a
  /// page cache the handle lives there under the shared budget (rebuilt on
  /// eviction); without one it is memoized on the reader — the tombstone
  /// list is immutable, so the memo can never go stale. `stats` (may be
  /// nullptr) gets the build counters and fragment-count histogram sample.
  Status GetFragmentedRangeTombstones(Statistics* stats,
                                      FragmentedRtHandle* out) const;

  // Pinned-mode conveniences (used by format tests and tools); invalid when
  // the reader was opened with cache_metadata = true — use GetIndex there.
  const TableIndex& index() const { return *pinned_index(); }
  uint32_t num_pages() const { return uint32_t(pinned_index()->pages.size()); }
  uint32_t num_tiles() const { return uint32_t(pinned_index()->tiles.size()); }
  const std::vector<PageInfo>& pages() const { return pinned_index()->pages; }
  const std::vector<TileInfo>& tiles() const { return pinned_index()->tiles; }
  const std::vector<RangeTombstone>& range_tombstones() const {
    return pinned_index()->range_tombstones;
  }
  uint32_t pages_per_tile() const { return pinned_index()->pages_per_tile; }

  /// Point lookup: locates the candidate tile via the sort-key fences, then
  /// probes each live page's Bloom filter (one hash digest per probe) and
  /// binary-searches fetched pages. Returns OK with *found=false if the key
  /// is not in this table. `meta` supplies page liveness (may be nullptr).
  /// `fill_cache` = false serves cache hits but never inserts
  /// (ReadOptions::fill_page_cache).
  /// `max_seq` bounds visibility for snapshot reads: the newest version with
  /// seq <= max_seq is returned; newer versions are skipped. The default
  /// reads the latest version in the table.
  Status Get(const Slice& user_key, const FileMeta* meta, Statistics* stats,
             bool* found, TableGetResult* result, bool fill_cache = true,
             SequenceNumber max_seq = kMaxSequenceNumber) const;

  /// Filter-only membership probe: fences + Bloom filters, no page I/O
  /// (cached-metadata mode may load the index/filter blocks). False means
  /// the key is definitely absent from this table; metadata load errors
  /// conservatively answer true. Used by FADE's blind-delete guard
  /// (§4.1.5).
  bool KeyMayExist(const Slice& user_key, const FileMeta* meta,
                   Statistics* stats) const;

  /// Produces the decoded page, from the page cache when possible (a hit
  /// costs no I/O, decode, or allocation), else via one page-sized Env read
  /// into a reusable thread-local scratch buffer. `generation` is the
  /// caller's FileMeta::page_generation (0 when no meta is in play); it
  /// fences cached decodes across in-place page rewrites. `*from_cache`
  /// (optional) reports whether the page was served without I/O, so the
  /// *_pages_read statistics keep counting real page I/Os only.
  /// `fill_cache` = false still serves hits but never inserts — for reads
  /// whose result is about to be invalidated (secondary-delete rewrites).
  Status ReadPage(uint32_t page_index, PageHandle* contents,
                  uint32_t generation = 0, bool* from_cache = nullptr,
                  bool fill_cache = true) const;

  /// Computes which pages a secondary range delete over delete keys
  /// [lo, hi) fully covers vs. partially overlaps, against the caller's
  /// index handle. Metadata-only; performs no page I/O. Already-dropped
  /// pages are excluded.
  void PlanSecondaryRangeDelete(const TableIndex& index, uint64_t lo,
                                uint64_t hi, const FileMeta* meta,
                                SecondaryDeletePlan* plan) const;

  /// Byte offset of a page within the file (pages are fixed-size).
  uint64_t PageOffset(uint32_t page_index) const {
    return static_cast<uint64_t>(page_index) * options_.page_size_bytes;
  }

  /// Iterator over all live entries in internal-key order. Reads one delete
  /// tile at a time (h pages), sorting it back to sort-key order in memory —
  /// compactions stream through files this way. The iterator pins the index
  /// handle for its lifetime; an index load failure surfaces as a
  /// never-valid iterator carrying the status. `fill_cache` = false keeps
  /// the bulk read from populating (and churning) the decoded-page LRU;
  /// compaction inputs always pass false, user scans pass
  /// ReadOptions::fill_page_cache.
  std::unique_ptr<InternalIterator> NewIterator(const FileMeta* meta,
                                                bool fill_cache = true) const;

  const TableOptions& options() const { return options_; }

 private:
  SSTableReader(const TableOptions& options,
                std::unique_ptr<RandomAccessFile> file, uint64_t file_number,
                PageCache* page_cache, bool cache_metadata)
      : options_(options),
        file_(std::move(file)),
        file_number_(file_number),
        page_cache_(page_cache),
        cache_metadata_(cache_metadata) {}

  Status Init(uint64_t file_size);

  /// The pinned index; asserts the reader is in pinned mode.
  const TableIndex* pinned_index() const;

  /// Cheap per-operation index acquisition: pinned mode hands out the
  /// resident index without touching `*scratch`; cached mode fills
  /// `*scratch` (cache hit or load) and points `*index` into it.
  Status IndexForOp(TableIndexHandle* scratch,
                    const TableIndex** index) const;

  /// Reads and parses the metadata region. `include_filters` selects the
  /// pinned layout (one contiguous [filters..props] read, bloom slices set)
  /// vs the lazy one ([rt..props] only, filters addressed by offset).
  Status LoadIndex(bool include_filters, TableIndexHandle* out) const;

  /// Index of the unique tile whose fence range may contain `user_key`, or
  /// -1 if none.
  static int FindTile(const TableIndex& index, const Slice& user_key);

  TableOptions options_;
  std::unique_ptr<RandomAccessFile> file_;
  uint64_t file_number_;
  PageCache* page_cache_;  // may be nullptr (cache disabled)
  bool cache_metadata_;

  // Footer geometry (fixed at Open).
  uint64_t filter_offset_ = 0;
  uint32_t filter_len_ = 0;
  uint64_t rt_offset_ = 0;
  uint32_t rt_len_ = 0;
  uint64_t index_offset_ = 0;
  uint32_t index_len_ = 0;
  uint64_t props_offset_ = 0;
  uint32_t props_len_ = 0;
  uint32_t meta_crc_ = 0;

  TableIndexHandle pinned_index_;  // set iff !cache_metadata_

  // Fragmented-RT memo for cacheless readers (page_cache_ == nullptr);
  // with a cache the fragmented block lives there instead so its footprint
  // stays under the charge-accounted budget.
  mutable std::mutex frt_mu_;
  mutable FragmentedRtHandle frt_memo_;

  friend class SSTableIterator;
};

}  // namespace lethe

#endif  // LETHE_FORMAT_SSTABLE_READER_H_
