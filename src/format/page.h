#ifndef LETHE_FORMAT_PAGE_H_
#define LETHE_FORMAT_PAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/format/entry.h"
#include "src/util/status.h"

namespace lethe {

/// Builds one fixed-size disk page:
///   fixed32 num_entries | entries... | zero padding | fixed32 crc32c
/// The CRC covers everything before it. Entries are stored in the order they
/// are added; for KiWi the caller sorts them by sort key before adding.
class PageBuilder {
 public:
  PageBuilder(uint64_t page_size_bytes, uint32_t max_entries);

  /// Returns true if the entry was accepted; false if it would overflow the
  /// page (by entry count or bytes).
  bool Add(const ParsedEntry& entry);

  bool empty() const { return num_entries_ == 0; }
  uint32_t num_entries() const { return num_entries_; }

  /// Serializes the page (padded to page_size_bytes) and resets the builder.
  std::string Finish();

 private:
  uint64_t page_size_bytes_;
  uint32_t max_entries_;
  uint32_t num_entries_;
  std::string buffer_;  // entry bytes only (header/crc added in Finish)
};

/// A decoded page: owns the raw page bytes; `entries` alias them. Decoded
/// pages are shared immutably across the read path (see
/// src/format/page_cache.h), so nothing may mutate one after DecodePage.
struct PageContents {
  std::unique_ptr<char[]> data;
  size_t raw_size = 0;  // bytes held by `data`
  std::vector<ParsedEntry> entries;
};

/// Decodes a page previously produced by PageBuilder. `raw` must be exactly
/// page_size_bytes long; its bytes are copied into the result so the caller's
/// buffer may be reused.
Status DecodePage(Slice raw, uint64_t page_size_bytes, bool verify_checksum,
                  PageContents* out);

}  // namespace lethe

#endif  // LETHE_FORMAT_PAGE_H_
