#ifndef LETHE_FORMAT_PAGE_CACHE_H_
#define LETHE_FORMAT_PAGE_CACHE_H_

#include <cstdint>
#include <memory>

#include "src/core/statistics.h"
#include "src/format/page.h"
#include "src/format/table_blocks.h"
#include "src/util/cache.h"

namespace lethe {

/// Shared, immutable ownership of one decoded page. Everything downstream of
/// a page read (point lookups, iterator cursors, TableGetResult values)
/// holds one of these, so a cache hit costs a refcount bump — no I/O, no
/// re-decode, no allocation.
using PageHandle = std::shared_ptr<const PageContents>;

/// Engine-wide cache of decoded table blocks, layered on the sharded
/// two-priority LRU. Four block types share one charge-accounted budget,
/// distinguished by a type tag in the cache key:
///
///   - data pages, keyed (file_number, generation, page_index) — admitted
///     at low priority. KiWi's delete-tile layout makes the read path
///     page-read heavy (a point lookup may probe up to h pages per tile),
///     so a hit here skips both the Env read and the entry decode.
///   - fence/index blocks, keyed (file_number) — one per table, admitted at
///     high priority (Options::cache_index_and_filter_blocks).
///   - Bloom filter blocks, keyed (file_number, tile_index) — one per
///     delete tile, admitted at high priority: data-page churn evicts
///     the filters the lookup cost model assumes resident only once no
///     evictable page remains to give up.
///   - fragmented range-tombstone blocks, keyed (file_number) — one per
///     table, admitted at high priority. Not an on-disk block: the
///     fragmented index is derived CPU-side from the decoded table index,
///     and cached so the O(N log N) fragmentation runs once per table, not
///     once per read.
///
/// SSTable files are immutable except for KiWi's secondary range deletes,
/// which rewrite or drop pages in place. Those are fenced by `generation`
/// (FileMeta::page_generation): the rewrite installs a new FileMeta with a
/// bumped generation, and since the generation is part of the cache key, a
/// racing reader can at worst insert a pre-rewrite decode under the *old*
/// generation — unreachable from the new version, aged out by the LRU.
/// (The on-disk index and filters are never rewritten, so index/filter keys
/// carry no generation.) EvictPage/EvictFile reclaim the memory eagerly
/// (file numbers are never reused, so EvictFile too is about memory, not
/// correctness); EvictFile drops every block type of the file.
///
/// In strict mode (Options::strict_cache_capacity) an insert that does not
/// fit the remaining budget is rejected; the Insert* methods return false
/// and the caller keeps serving from its unpooled handle. Counters flow
/// into the engine Statistics when one is supplied: per-type hits/misses,
/// strict rejections, per-type charge gauges, and the overall
/// page_cache_charge_bytes/evictions pair.
class PageCache {
 public:
  /// `capacity_bytes` is the total charge budget; `stats` may be nullptr.
  PageCache(size_t capacity_bytes, int shard_bits, Statistics* stats,
            bool strict_capacity = false);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // ---- data pages ---------------------------------------------------------

  /// On hit, sets `*page` (pinned by shared ownership) and returns true.
  bool Lookup(uint64_t file_number, uint32_t page_index, PageHandle* page,
              uint32_t generation = 0);

  /// Caches a freshly decoded page. The charge is derived from the decoded
  /// footprint (raw bytes + parsed entry vector). Returns false when a
  /// strict budget rejected the insert.
  bool Insert(uint64_t file_number, uint32_t page_index,
              const PageHandle& page, uint32_t generation = 0);

  // ---- fence/index blocks -------------------------------------------------

  bool LookupIndex(uint64_t file_number, TableIndexHandle* index);
  bool InsertIndex(uint64_t file_number, const TableIndexHandle& index);

  // ---- fragmented range-tombstone blocks ----------------------------------

  /// One per table (keyed like the index block; a table's tombstone list is
  /// immutable, so no generation). Built CPU-side from the decoded index —
  /// caching it avoids re-fragmenting on every RT-consulting read.
  bool LookupFragmentedRt(uint64_t file_number, FragmentedRtHandle* rt);
  bool InsertFragmentedRt(uint64_t file_number, const FragmentedRtHandle& rt);

  // ---- Bloom filter blocks ------------------------------------------------

  bool LookupFilter(uint64_t file_number, uint32_t tile_index,
                    FilterBlockHandle* filter);
  bool InsertFilter(uint64_t file_number, uint32_t tile_index,
                    const FilterBlockHandle& filter);

  // ---- invalidation -------------------------------------------------------

  /// Reclaims one data page of one generation (rewritten or dropped by a
  /// secondary range delete).
  void EvictPage(uint64_t file_number, uint32_t page_index,
                 uint32_t generation = 0);

  /// Reclaims every cached block of `file_number` — pages of all
  /// generations, the index block, and every filter block (file deleted).
  void EvictFile(uint64_t file_number);

  size_t TotalCharge() const { return cache_->TotalCharge(); }
  size_t capacity() const { return cache_->capacity(); }
  bool strict() const { return cache_->strict_capacity(); }
  size_t ReservedBytes() const { return cache_->ReservedBytes(); }

  /// The underlying charge-accounted cache; reservations (write-buffer
  /// accounting) stake against it via CacheReservation.
  Cache* cache() { return cache_.get(); }

  /// The statistics sink, for callers (readers) that count block loads.
  Statistics* stats() { return stats_; }

 private:
  /// Shared insert tail: releases an admitted handle, counts a strict
  /// rejection otherwise, refreshes the gauges. Returns admitted.
  bool FinishInsert(Cache::Handle* handle);

  void PublishGauges();

  std::unique_ptr<Cache> cache_;
  Statistics* stats_;
};

}  // namespace lethe

#endif  // LETHE_FORMAT_PAGE_CACHE_H_
