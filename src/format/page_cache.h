#ifndef LETHE_FORMAT_PAGE_CACHE_H_
#define LETHE_FORMAT_PAGE_CACHE_H_

#include <cstdint>
#include <memory>

#include "src/core/statistics.h"
#include "src/format/page.h"
#include "src/util/cache.h"

namespace lethe {

/// Shared, immutable ownership of one decoded page. Everything downstream of
/// a page read (point lookups, iterator cursors, TableGetResult values)
/// holds one of these, so a cache hit costs a refcount bump — no I/O, no
/// re-decode, no allocation.
using PageHandle = std::shared_ptr<const PageContents>;

/// Engine-wide cache of *decoded* pages keyed by (file_number, page_index),
/// layered on the sharded LRU. KiWi's delete-tile layout makes the read path
/// page-read heavy (a point lookup may probe up to h pages per tile), so a
/// hit here skips both the Env read and the entry decode.
///
/// SSTable files are immutable except for KiWi's secondary range deletes,
/// which rewrite or drop pages in place. Those are fenced by `generation`
/// (FileMeta::page_generation): the rewrite installs a new FileMeta with a
/// bumped generation, and since the generation is part of the cache key, a
/// racing reader can at worst insert a pre-rewrite decode under the *old*
/// generation — unreachable from the new version, aged out by the LRU.
/// EvictPage/EvictFile reclaim the memory eagerly (file numbers are never
/// reused, so EvictFile too is about memory, not correctness).
///
/// Counters flow into the engine Statistics when one is supplied:
/// page_cache_hits/misses/evictions plus the page_cache_charge_bytes gauge.
class PageCache {
 public:
  /// `capacity_bytes` is the total charge budget; `stats` may be nullptr.
  PageCache(size_t capacity_bytes, int shard_bits, Statistics* stats);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// On hit, sets `*page` (pinned by shared ownership) and returns true.
  bool Lookup(uint64_t file_number, uint32_t page_index, PageHandle* page,
              uint32_t generation = 0);

  /// Caches a freshly decoded page. The charge is derived from the decoded
  /// footprint (raw bytes + parsed entry vector).
  void Insert(uint64_t file_number, uint32_t page_index,
              const PageHandle& page, uint32_t generation = 0);

  /// Reclaims one page of one generation (rewritten or dropped by a
  /// secondary range delete).
  void EvictPage(uint64_t file_number, uint32_t page_index,
                 uint32_t generation = 0);

  /// Reclaims every cached page of `file_number`, all generations (file
  /// deleted).
  void EvictFile(uint64_t file_number);

  size_t TotalCharge() const { return cache_->TotalCharge(); }
  size_t capacity() const { return cache_->capacity(); }

 private:
  void PublishGauges();

  std::unique_ptr<Cache> cache_;
  Statistics* stats_;
};

}  // namespace lethe

#endif  // LETHE_FORMAT_PAGE_CACHE_H_
