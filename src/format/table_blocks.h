#ifndef LETHE_FORMAT_TABLE_BLOCKS_H_
#define LETHE_FORMAT_TABLE_BLOCKS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/format/range_tombstone.h"
#include "src/util/slice.h"

namespace lethe {

/// Decoded per-page index record. Sort-key fences may be conservatively wide
/// after partial page drops (the on-disk index is immutable; see
/// FileMeta::dropped_pages). `bloom` is resolvable in two ways: pinned
/// readers set it directly (aliasing TableIndex::buffer); lazily-loaded
/// filters locate it inside the owning tile's FilterBlock via
/// filter_offset/filter_len.
struct PageInfo {
  Slice min_sort_key;
  Slice max_sort_key;
  uint64_t min_delete_key = UINT64_MAX;
  uint64_t max_delete_key = 0;
  uint32_t num_entries = 0;
  uint32_t num_tombstones = 0;
  uint32_t filter_offset = 0;  // byte offset within the tile's filter block
  uint32_t filter_len = 0;
  Slice bloom;  // set only when the table's filters are pinned
};

/// One delete tile: `page_count` consecutive pages starting at `first_page`,
/// internally ordered by delete key. Tiles partition the file's sort-key
/// space; `min/max_sort_key` are the tile-level fence pointers on S. The
/// filter_* fields address the tile's Bloom filter block inside the file.
struct TileInfo {
  uint32_t first_page = 0;
  uint32_t page_count = 0;
  Slice min_sort_key;
  Slice max_sort_key;
  uint64_t filter_offset = 0;  // absolute file offset of the filter block
  uint32_t filter_len = 0;
  uint32_t filter_crc = 0;  // in-memory digest; see filter_crcs_valid
};

/// The decoded metadata of one table — fence/index structure plus range
/// tombstones — as one cacheable unit. `buffer` backs every Slice in
/// `pages`/`tiles` (and, for pinned readers, the filter bytes too), so a
/// TableIndex is immovable once parsed: it is always heap-allocated and
/// shared immutably via TableIndexHandle.
struct TableIndex {
  TableIndex() = default;
  TableIndex(const TableIndex&) = delete;
  TableIndex& operator=(const TableIndex&) = delete;

  std::string buffer;
  std::vector<PageInfo> pages;
  std::vector<TileInfo> tiles;
  std::vector<RangeTombstone> range_tombstones;
  uint32_t pages_per_tile = 1;

  /// Some user key has >1 version in this file (possible only when a pinned
  /// snapshot forced retention). Point lookups must then select the best
  /// visible version across all candidate pages instead of returning the
  /// first match, since the weave orders pages by delete key.
  bool multi_version = false;

  /// True when the tiles' filter_crc fields hold digests derived from a
  /// checksum-verified read of the filter section (the on-disk crc covers
  /// the whole metadata region; per-tile digests are computed at index
  /// load so later per-tile filter loads can verify just their block).
  bool filter_crcs_valid = false;

  /// Charge against the cache budget: backing bytes plus the parsed
  /// structures.
  size_t ApproximateMemoryUsage() const {
    size_t total = sizeof(*this) + buffer.size() +
                   pages.size() * sizeof(PageInfo) +
                   tiles.size() * sizeof(TileInfo);
    for (const RangeTombstone& rt : range_tombstones) {
      total += sizeof(RangeTombstone) + rt.begin_key.size() +
               rt.end_key.size();
    }
    return total;
  }
};

/// Shared, immutable ownership of one decoded table index.
using TableIndexHandle = std::shared_ptr<const TableIndex>;

/// Shared, immutable ownership of one table's fragmented range-tombstone
/// index (built lazily from TableIndex::range_tombstones on the first
/// RT-consulting read; cached in the block cache alongside the index).
using FragmentedRtHandle = std::shared_ptr<const FragmentedRangeTombstoneList>;

/// One delete tile's Bloom filter block: the concatenated per-page filters,
/// located per page via PageInfo::filter_offset/filter_len.
struct FilterBlock {
  std::string data;

  size_t ApproximateMemoryUsage() const {
    return sizeof(*this) + data.size();
  }
};

/// Shared, immutable ownership of one tile's filter block.
using FilterBlockHandle = std::shared_ptr<const FilterBlock>;

/// The Bloom filter bytes of page `page`, resolved against its tile's
/// filter block (`filter` may be nullptr when the page's `bloom` slice is
/// already pinned).
inline Slice BloomOf(const PageInfo& page, const FilterBlock* filter) {
  if (filter == nullptr) {
    return page.bloom;
  }
  return Slice(filter->data.data() + page.filter_offset, page.filter_len);
}

}  // namespace lethe

#endif  // LETHE_FORMAT_TABLE_BLOCKS_H_
