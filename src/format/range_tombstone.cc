#include "src/format/range_tombstone.h"

#include <algorithm>

#include "src/util/coding.h"

namespace lethe {

void EncodeRangeTombstones(const std::vector<RangeTombstone>& tombstones,
                           std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(tombstones.size()));
  for (const RangeTombstone& t : tombstones) {
    PutLengthPrefixedSlice(dst, t.begin_key);
    PutLengthPrefixedSlice(dst, t.end_key);
    PutFixed64(dst, t.seq);
    PutFixed64(dst, t.time);
  }
}

Status DecodeRangeTombstones(Slice input,
                             std::vector<RangeTombstone>* tombstones) {
  tombstones->clear();
  uint32_t count;
  if (!GetVarint32(&input, &count)) {
    return Status::Corruption("range tombstone block: bad count");
  }
  tombstones->reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    RangeTombstone t;
    Slice begin, end;
    if (!GetLengthPrefixedSlice(&input, &begin) ||
        !GetLengthPrefixedSlice(&input, &end) ||
        !GetFixed64(&input, &t.seq) || !GetFixed64(&input, &t.time)) {
      return Status::Corruption("range tombstone block: truncated");
    }
    t.begin_key = begin.ToString();
    t.end_key = end.ToString();
    tombstones->push_back(std::move(t));
  }
  return Status::OK();
}

void RangeTombstoneSet::Add(const RangeTombstone& tombstone) {
  auto it = std::lower_bound(
      tombstones_.begin(), tombstones_.end(), tombstone,
      [](const RangeTombstone& a, const RangeTombstone& b) {
        return Slice(a.begin_key).compare(Slice(b.begin_key)) < 0;
      });
  tombstones_.insert(it, tombstone);
}

void RangeTombstoneSet::AddAll(const std::vector<RangeTombstone>& tombstones) {
  if (tombstones.empty()) {
    return;
  }
  // Bulk append + one stable sort instead of a per-element sorted insert
  // (which is O(N^2) in vector moves). Queries aggregate over every
  // tombstone containing the key, so the relative order of equal begin
  // keys — the only thing that differs from repeated Add — is immaterial.
  tombstones_.insert(tombstones_.end(), tombstones.begin(), tombstones.end());
  std::stable_sort(tombstones_.begin(), tombstones_.end(),
                   [](const RangeTombstone& a, const RangeTombstone& b) {
                     return Slice(a.begin_key).compare(Slice(b.begin_key)) < 0;
                   });
}

bool RangeTombstoneSet::Covers(const Slice& user_key, SequenceNumber seq,
                               SequenceNumber max_seq) const {
  for (const RangeTombstone& t : tombstones_) {
    if (Slice(t.begin_key).compare(user_key) > 0) {
      break;  // sorted by begin; no later tombstone can contain user_key
    }
    if (t.Contains(user_key) && t.seq > seq && t.seq <= max_seq) {
      return true;
    }
  }
  return false;
}

SequenceNumber RangeTombstoneSet::MaxCoverSeq(const Slice& user_key,
                                              SequenceNumber max_seq) const {
  SequenceNumber cover = 0;
  for (const RangeTombstone& t : tombstones_) {
    if (Slice(t.begin_key).compare(user_key) > 0) {
      break;
    }
    if (t.Contains(user_key) && t.seq <= max_seq) {
      cover = std::max(cover, t.seq);
    }
  }
  return cover;
}

SequenceNumber RangeTombstoneSet::MinCoverSeqAbove(const Slice& user_key,
                                                   SequenceNumber seq) const {
  SequenceNumber cover = 0;
  for (const RangeTombstone& t : tombstones_) {
    if (Slice(t.begin_key).compare(user_key) > 0) {
      break;
    }
    if (t.Contains(user_key) && t.seq > seq &&
        (cover == 0 || t.seq < cover)) {
      cover = t.seq;
    }
  }
  return cover;
}

FragmentedRangeTombstoneList::FragmentedRangeTombstoneList(
    const std::vector<RangeTombstone>& tombstones) {
  if (tombstones.empty()) {
    return;
  }
  // Boundary sweep: every begin/end key is a fragment boundary, so within
  // one fragment the set of covering tombstones is constant.
  keys_.reserve(tombstones.size() * 2);
  for (const RangeTombstone& t : tombstones) {
    if (Slice(t.begin_key).compare(Slice(t.end_key)) >= 0) {
      continue;  // empty range: covers nothing (Contains is always false)
    }
    keys_.push_back(t.begin_key);
    keys_.push_back(t.end_key);
  }
  std::sort(keys_.begin(), keys_.end());
  keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());
  if (keys_.size() < 2) {
    keys_.clear();
    return;
  }

  // Scatter each tombstone's seq into the fragments it spans. Both bounds
  // are boundary keys, so the lower_bounds land exactly.
  const size_t num_frags = keys_.size() - 1;
  std::vector<std::vector<SequenceNumber>> frag_seqs(num_frags);
  for (const RangeTombstone& t : tombstones) {
    if (Slice(t.begin_key).compare(Slice(t.end_key)) >= 0) {
      continue;
    }
    const size_t lo =
        std::lower_bound(keys_.begin(), keys_.end(), t.begin_key) -
        keys_.begin();
    const size_t hi =
        std::lower_bound(keys_.begin(), keys_.end(), t.end_key) -
        keys_.begin();
    for (size_t i = lo; i < hi; i++) {
      frag_seqs[i].push_back(t.seq);
    }
  }

  seq_offset_.reserve(keys_.size());
  for (std::vector<SequenceNumber>& seqs : frag_seqs) {
    // Ascending + deduplicated: every query is an aggregate (max below a
    // bound, existence in a window, min above), so duplicates are inert.
    std::sort(seqs.begin(), seqs.end());
    seqs.erase(std::unique(seqs.begin(), seqs.end()), seqs.end());
    seq_offset_.push_back(static_cast<uint32_t>(seqs_.size()));
    seqs_.insert(seqs_.end(), seqs.begin(), seqs.end());
  }
  seq_offset_.push_back(static_cast<uint32_t>(seqs_.size()));
}

bool FragmentedRangeTombstoneList::FragmentSeqs(
    const Slice& user_key, const SequenceNumber** begin,
    const SequenceNumber** end) const {
  if (keys_.empty()) {
    return false;
  }
  // Largest boundary <= user_key owns the fragment; keys before the first
  // boundary or at/after the last are outside every tombstone.
  auto it = std::upper_bound(
      keys_.begin(), keys_.end(), user_key,
      [](const Slice& key, const std::string& boundary) {
        return key.compare(Slice(boundary)) < 0;
      });
  if (it == keys_.begin() || it == keys_.end()) {
    return false;
  }
  const size_t idx = static_cast<size_t>(it - keys_.begin()) - 1;
  *begin = seqs_.data() + seq_offset_[idx];
  *end = seqs_.data() + seq_offset_[idx + 1];
  return *begin != *end;
}

bool FragmentedRangeTombstoneList::Covers(const Slice& user_key,
                                          SequenceNumber seq,
                                          SequenceNumber max_seq) const {
  const SequenceNumber *begin, *end;
  if (!FragmentSeqs(user_key, &begin, &end)) {
    return false;
  }
  const SequenceNumber* it = std::upper_bound(begin, end, seq);
  return it != end && *it <= max_seq;
}

SequenceNumber FragmentedRangeTombstoneList::MaxCoverSeq(
    const Slice& user_key, SequenceNumber max_seq) const {
  const SequenceNumber *begin, *end;
  if (!FragmentSeqs(user_key, &begin, &end)) {
    return 0;
  }
  const SequenceNumber* it = std::upper_bound(begin, end, max_seq);
  return it == begin ? 0 : *(it - 1);
}

SequenceNumber FragmentedRangeTombstoneList::MinCoverSeqAbove(
    const Slice& user_key, SequenceNumber seq) const {
  const SequenceNumber *begin, *end;
  if (!FragmentSeqs(user_key, &begin, &end)) {
    return 0;
  }
  const SequenceNumber* it = std::upper_bound(begin, end, seq);
  return it == end ? 0 : *it;
}

size_t FragmentedRangeTombstoneList::ApproximateMemoryUsage() const {
  size_t total = sizeof(*this) + seq_offset_.size() * sizeof(uint32_t) +
                 seqs_.size() * sizeof(SequenceNumber);
  for (const std::string& key : keys_) {
    total += sizeof(std::string) + key.size();
  }
  return total;
}

}  // namespace lethe
