#include "src/format/range_tombstone.h"

#include <algorithm>

#include "src/util/coding.h"

namespace lethe {

void EncodeRangeTombstones(const std::vector<RangeTombstone>& tombstones,
                           std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(tombstones.size()));
  for (const RangeTombstone& t : tombstones) {
    PutLengthPrefixedSlice(dst, t.begin_key);
    PutLengthPrefixedSlice(dst, t.end_key);
    PutFixed64(dst, t.seq);
    PutFixed64(dst, t.time);
  }
}

Status DecodeRangeTombstones(Slice input,
                             std::vector<RangeTombstone>* tombstones) {
  tombstones->clear();
  uint32_t count;
  if (!GetVarint32(&input, &count)) {
    return Status::Corruption("range tombstone block: bad count");
  }
  tombstones->reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    RangeTombstone t;
    Slice begin, end;
    if (!GetLengthPrefixedSlice(&input, &begin) ||
        !GetLengthPrefixedSlice(&input, &end) ||
        !GetFixed64(&input, &t.seq) || !GetFixed64(&input, &t.time)) {
      return Status::Corruption("range tombstone block: truncated");
    }
    t.begin_key = begin.ToString();
    t.end_key = end.ToString();
    tombstones->push_back(std::move(t));
  }
  return Status::OK();
}

void RangeTombstoneSet::Add(const RangeTombstone& tombstone) {
  auto it = std::lower_bound(
      tombstones_.begin(), tombstones_.end(), tombstone,
      [](const RangeTombstone& a, const RangeTombstone& b) {
        return Slice(a.begin_key).compare(Slice(b.begin_key)) < 0;
      });
  tombstones_.insert(it, tombstone);
}

void RangeTombstoneSet::AddAll(const std::vector<RangeTombstone>& tombstones) {
  for (const RangeTombstone& t : tombstones) {
    Add(t);
  }
}

bool RangeTombstoneSet::Covers(const Slice& user_key, SequenceNumber seq,
                               SequenceNumber max_seq) const {
  for (const RangeTombstone& t : tombstones_) {
    if (Slice(t.begin_key).compare(user_key) > 0) {
      break;  // sorted by begin; no later tombstone can contain user_key
    }
    if (t.Contains(user_key) && t.seq > seq && t.seq <= max_seq) {
      return true;
    }
  }
  return false;
}

SequenceNumber RangeTombstoneSet::MaxCoverSeq(const Slice& user_key,
                                              SequenceNumber max_seq) const {
  SequenceNumber cover = 0;
  for (const RangeTombstone& t : tombstones_) {
    if (Slice(t.begin_key).compare(user_key) > 0) {
      break;
    }
    if (t.Contains(user_key) && t.seq <= max_seq) {
      cover = std::max(cover, t.seq);
    }
  }
  return cover;
}

SequenceNumber RangeTombstoneSet::MinCoverSeqAbove(const Slice& user_key,
                                                   SequenceNumber seq) const {
  SequenceNumber cover = 0;
  for (const RangeTombstone& t : tombstones_) {
    if (Slice(t.begin_key).compare(user_key) > 0) {
      break;
    }
    if (t.Contains(user_key) && t.seq > seq &&
        (cover == 0 || t.seq < cover)) {
      cover = t.seq;
    }
  }
  return cover;
}

}  // namespace lethe
