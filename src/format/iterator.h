#ifndef LETHE_FORMAT_ITERATOR_H_
#define LETHE_FORMAT_ITERATOR_H_

#include "src/format/entry.h"
#include "src/util/status.h"

namespace lethe {

/// Internal iterator over entries in internal-key order (sort key ascending,
/// sequence number descending). Produced by memtables, SSTables, and the
/// merging iterator; consumed by compactions and user-facing scans.
///
/// The entry returned by entry() remains valid only until the next mutating
/// call (Next/Seek/SeekToFirst).
class InternalIterator {
 public:
  virtual ~InternalIterator() = default;

  InternalIterator() = default;
  InternalIterator(const InternalIterator&) = delete;
  InternalIterator& operator=(const InternalIterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;

  /// Positions at the first entry whose user key is >= target (any seq).
  virtual void Seek(const Slice& target) = 0;

  virtual void Next() = 0;
  virtual const ParsedEntry& entry() const = 0;

  /// Non-OK if the iterator encountered corruption or I/O errors.
  virtual Status status() const = 0;
};

}  // namespace lethe

#endif  // LETHE_FORMAT_ITERATOR_H_
