#ifndef LETHE_FORMAT_TABLE_OPTIONS_H_
#define LETHE_FORMAT_TABLE_OPTIONS_H_

#include <cstdint>

namespace lethe {

/// Physical layout knobs for SSTables. These are the KiWi tuning parameters
/// from the paper: B (entries per page), h (pages per delete tile), and the
/// Bloom filter budget. h = 1 reproduces the classic sort-key-only layout
/// used by the state-of-the-art baseline (§4.2.3: "h = 1 creates the same
/// layout as the state of the art").
struct TableOptions {
  /// Physical page size; pages are zero-padded to exactly this many bytes so
  /// page k lives at byte offset k * page_size_bytes and page-granular I/O
  /// accounting is exact.
  uint64_t page_size_bytes = 4096;

  /// B: maximum entries stored in one page.
  uint32_t entries_per_page = 4;

  /// h: pages per delete tile. Pages within a tile are ordered by delete
  /// key; entries within a page stay sorted on the sort key.
  uint32_t pages_per_tile = 1;

  /// Bloom filter bits per key (m/N); one filter per page.
  uint32_t bloom_bits_per_key = 10;

  /// Verify page checksums on read.
  bool verify_checksums = true;
};

}  // namespace lethe

#endif  // LETHE_FORMAT_TABLE_OPTIONS_H_
