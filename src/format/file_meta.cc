#include "src/format/file_meta.h"

#include "src/util/coding.h"

namespace lethe {

void EncodeFileMeta(const FileMeta& meta, std::string* dst) {
  PutVarint64(dst, meta.file_number);
  PutVarint64(dst, meta.file_size);
  PutVarint64(dst, meta.run_id);
  PutVarint64(dst, meta.num_entries);
  PutVarint64(dst, meta.num_point_tombstones);
  PutVarint64(dst, meta.num_range_tombstones);
  PutLengthPrefixedSlice(dst, meta.smallest_key);
  PutLengthPrefixedSlice(dst, meta.largest_key);
  PutFixed64(dst, meta.min_delete_key);
  PutFixed64(dst, meta.max_delete_key);
  PutFixed64(dst, meta.smallest_seq);
  PutFixed64(dst, meta.largest_seq);
  PutFixed64(dst, meta.oldest_tombstone_time);
  PutVarint32(dst, meta.num_pages);
  PutVarint32(dst, meta.dropped_page_count);
  PutLengthPrefixedSlice(
      dst, Slice(reinterpret_cast<const char*>(meta.dropped_pages.data()),
                 meta.dropped_pages.size()));
  PutVarint32(dst, static_cast<uint32_t>(meta.page_live_entries.size()));
  for (uint32_t v : meta.page_live_entries) {
    PutVarint32(dst, v);
  }
  PutVarint32(dst, static_cast<uint32_t>(meta.page_live_tombstones.size()));
  for (uint32_t v : meta.page_live_tombstones) {
    PutVarint32(dst, v);
  }
}

Status DecodeFileMeta(Slice* input, FileMeta* meta) {
  Slice smallest, largest;
  if (!GetVarint64(input, &meta->file_number) ||
      !GetVarint64(input, &meta->file_size) ||
      !GetVarint64(input, &meta->run_id) ||
      !GetVarint64(input, &meta->num_entries) ||
      !GetVarint64(input, &meta->num_point_tombstones) ||
      !GetVarint64(input, &meta->num_range_tombstones) ||
      !GetLengthPrefixedSlice(input, &smallest) ||
      !GetLengthPrefixedSlice(input, &largest) ||
      !GetFixed64(input, &meta->min_delete_key) ||
      !GetFixed64(input, &meta->max_delete_key) ||
      !GetFixed64(input, &meta->smallest_seq) ||
      !GetFixed64(input, &meta->largest_seq) ||
      !GetFixed64(input, &meta->oldest_tombstone_time)) {
    return Status::Corruption("malformed FileMeta");
  }
  Slice bitmap;
  if (!GetVarint32(input, &meta->num_pages) ||
      !GetVarint32(input, &meta->dropped_page_count) ||
      !GetLengthPrefixedSlice(input, &bitmap)) {
    return Status::Corruption("malformed FileMeta page bitmap");
  }
  meta->smallest_key = smallest.ToString();
  meta->largest_key = largest.ToString();
  meta->dropped_pages.assign(
      reinterpret_cast<const uint8_t*>(bitmap.data()),
      reinterpret_cast<const uint8_t*>(bitmap.data()) + bitmap.size());

  uint32_t count;
  if (!GetVarint32(input, &count)) {
    return Status::Corruption("malformed FileMeta page counts");
  }
  meta->page_live_entries.resize(count);
  for (uint32_t i = 0; i < count; i++) {
    if (!GetVarint32(input, &meta->page_live_entries[i])) {
      return Status::Corruption("malformed FileMeta page entry counts");
    }
  }
  if (!GetVarint32(input, &count)) {
    return Status::Corruption("malformed FileMeta page tombstone counts");
  }
  meta->page_live_tombstones.resize(count);
  for (uint32_t i = 0; i < count; i++) {
    if (!GetVarint32(input, &meta->page_live_tombstones[i])) {
      return Status::Corruption("malformed FileMeta tombstone counts");
    }
  }
  return Status::OK();
}

}  // namespace lethe
