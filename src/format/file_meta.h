#ifndef LETHE_FORMAT_FILE_META_H_
#define LETHE_FORMAT_FILE_META_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/format/entry.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace lethe {

/// Sentinel meaning "this file contains no tombstones"; such files never
/// TTL-expire (paper: files without tombstones have amax = 0 and are never
/// chosen by the delete-driven trigger).
constexpr uint64_t kNoTombstoneTime = UINT64_MAX;

/// Per-file metadata kept in memory by the version set and persisted in the
/// MANIFEST. This is exactly the metadata FADE consumes: entry and tombstone
/// counts (for the b estimate) plus the insertion time of the oldest
/// tombstone (for amax = now - oldest_tombstone_time). The paper notes
/// engines already store equivalents of all of this, so FADE has effectively
/// no metadata footprint (§4.1.3).
struct FileMeta {
  uint64_t file_number = 0;
  uint64_t file_size = 0;

  /// Sorted-run membership within a level. Leveling keeps a single run per
  /// level (run_id 0); tiering assigns each flushed/compacted run a fresh
  /// monotonically increasing id, so run recency is the id order.
  uint64_t run_id = 0;

  uint64_t num_entries = 0;  // includes point tombstones
  uint64_t num_point_tombstones = 0;
  uint64_t num_range_tombstones = 0;

  std::string smallest_key;  // sort-key range [smallest_key, largest_key]
  std::string largest_key;
  uint64_t min_delete_key = UINT64_MAX;  // delete-key range
  uint64_t max_delete_key = 0;

  SequenceNumber smallest_seq = 0;
  SequenceNumber largest_seq = 0;

  /// Memtable-insertion time (Clock micros) of the oldest point or range
  /// tombstone in the file, kNoTombstoneTime if there are none.
  uint64_t oldest_tombstone_time = kNoTombstoneTime;

  /// Sequence of the oldest tombstone in the file. Lets the delete-driven
  /// trigger tell whether a bottommost file's tombstones are reclaimable
  /// at all: a tombstone can only be dropped once no live snapshot pins it
  /// (seq <= oldest snapshot), and when even the file's *oldest* tombstone
  /// is pinned, a TTL compaction of the file cannot make progress and must
  /// not be scheduled (it would re-trigger forever until the snapshot is
  /// released). In-memory only — not persisted in the MANIFEST: snapshots
  /// do not survive a reopen, so after recovery every on-disk tombstone is
  /// older than any snapshot that can ever be taken, and the decoded
  /// default 0 ("reclaimable") is exact.
  SequenceNumber oldest_tombstone_seq = 0;

  /// Total data pages in the file and the liveness bitmap maintained by
  /// secondary range deletes. A *full page drop* flips a bit here (a
  /// metadata-only operation, the moral equivalent of a filesystem hole
  /// punch) — the page is never read or rewritten. The bitmap is
  /// authoritative and persisted via the MANIFEST; the file's on-disk index
  /// block intentionally goes stale (paper §4.2.3: full drops need no
  /// filter/index reconstruction).
  uint32_t num_pages = 0;
  uint32_t dropped_page_count = 0;
  std::vector<uint8_t> dropped_pages;  // bitmap; empty means "none dropped"

  /// Page-cache generation, bumped each time a secondary range delete
  /// rewrites or drops any of this file's pages. The generation is part of
  /// the decoded-page cache key, so readers holding the *new* version can
  /// never hit a decode of the pre-rewrite bytes, however reads and the
  /// in-place rewrite interleave. Process-local (not persisted): a reopen
  /// starts with an empty cache, so generation 0 is always consistent.
  uint32_t page_generation = 0;

  /// Live entry / point-tombstone counts per page, populated lazily (from
  /// the file's index block) the first time a secondary range delete touches
  /// the file, so that subsequent full page drops adjust `num_entries` and
  /// `num_point_tombstones` exactly without reading the pages. Empty means
  /// "no page was ever partially rewritten or dropped".
  std::vector<uint32_t> page_live_entries;
  std::vector<uint32_t> page_live_tombstones;

  bool IsPageDropped(uint32_t page) const {
    if (dropped_pages.empty()) {
      return false;
    }
    return (dropped_pages[page / 8] >> (page % 8)) & 1;
  }

  void DropPage(uint32_t page) {
    if (dropped_pages.empty()) {
      dropped_pages.assign((num_pages + 7) / 8, 0);
    }
    uint8_t mask = static_cast<uint8_t>(1 << (page % 8));
    if (!(dropped_pages[page / 8] & mask)) {
      dropped_pages[page / 8] |= mask;
      dropped_page_count++;
    }
  }

  uint32_t live_page_count() const { return num_pages - dropped_page_count; }

  bool HasTombstones() const {
    return num_point_tombstones > 0 || num_range_tombstones > 0;
  }

  /// Age of the file's oldest tombstone at time `now` (micros); 0 if no
  /// tombstones.
  uint64_t TombstoneAge(uint64_t now) const {
    if (!HasTombstones() || oldest_tombstone_time == kNoTombstoneTime ||
        now < oldest_tombstone_time) {
      return 0;
    }
    return now - oldest_tombstone_time;
  }

  bool OverlapsKeyRange(const Slice& begin, const Slice& end) const {
    // [smallest_key, largest_key] vs [begin, end] inclusive bounds.
    return !(Slice(largest_key).compare(begin) < 0 ||
             end.compare(Slice(smallest_key)) < 0);
  }

  bool OverlapsDeleteKeyRange(uint64_t lo, uint64_t hi) const {
    // [min_delete_key, max_delete_key] vs [lo, hi) half-open.
    if (min_delete_key == UINT64_MAX && max_delete_key == 0) {
      return false;  // empty delete-key range (no entries)
    }
    return min_delete_key < hi && max_delete_key >= lo;
  }
};

/// MANIFEST serialization.
void EncodeFileMeta(const FileMeta& meta, std::string* dst);
Status DecodeFileMeta(Slice* input, FileMeta* meta);

}  // namespace lethe

#endif  // LETHE_FORMAT_FILE_META_H_
