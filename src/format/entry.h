#ifndef LETHE_FORMAT_ENTRY_H_
#define LETHE_FORMAT_ENTRY_H_

#include <cstdint>
#include <string>

#include "src/util/slice.h"
#include "src/util/status.h"

namespace lethe {

/// Monotonically increasing, insertion-driven sequence number. Mirrors
/// RocksDB's seqnum, which FADE reuses to compute tombstone ages (§4.1.3).
using SequenceNumber = uint64_t;

/// Maximum representable sequence number (56 bits; the low 8 bits of the
/// internal-key trailer hold the ValueType).
constexpr SequenceNumber kMaxSequenceNumber = (1ull << 56) - 1;

/// Entry kinds stored in the tree. Range tombstones are not inline entries;
/// they live in a dedicated per-file block (see range_tombstone.h), matching
/// the RocksDB DeleteRange design described in the paper (§3.1.1).
enum class ValueType : uint8_t {
  kValue = 1,
  kTombstone = 2,  // point delete
};

/// A fully decoded key-value entry: the sort key S, the secondary delete
/// key D (fixed 64-bit, e.g. a timestamp), recency metadata, and the value.
/// Slices point into storage owned by whoever produced the entry.
struct ParsedEntry {
  Slice user_key;            // sort key S
  uint64_t delete_key = 0;   // secondary delete key D
  SequenceNumber seq = 0;
  ValueType type = ValueType::kValue;
  Slice value;

  bool IsTombstone() const { return type == ValueType::kTombstone; }
};

/// Internal-key ordering: sort key ascending, then sequence number
/// descending (more recent first), matching LSM level semantics where the
/// first match during a newest-to-oldest traversal wins.
inline int CompareInternal(const Slice& a_key, SequenceNumber a_seq,
                           const Slice& b_key, SequenceNumber b_seq) {
  int c = a_key.compare(b_key);
  if (c != 0) {
    return c;
  }
  if (a_seq > b_seq) {
    return -1;
  }
  if (a_seq < b_seq) {
    return +1;
  }
  return 0;
}

inline int CompareInternal(const ParsedEntry& a, const ParsedEntry& b) {
  return CompareInternal(a.user_key, a.seq, b.user_key, b.seq);
}

/// Packs (seq, type) into the 8-byte internal-key trailer.
inline uint64_t PackSeqAndType(SequenceNumber seq, ValueType type) {
  return (seq << 8) | static_cast<uint64_t>(type);
}

inline SequenceNumber UnpackSeq(uint64_t packed) { return packed >> 8; }
inline ValueType UnpackType(uint64_t packed) {
  return static_cast<ValueType>(packed & 0xff);
}

/// Serializes an entry: varint32 key_len | key | fixed64 (seq,type) |
/// fixed64 delete_key | varint32 value_len | value. Appends to *dst.
void EncodeEntry(const ParsedEntry& entry, std::string* dst);

/// Parses one entry from the front of *input, advancing it. The resulting
/// slices alias *input's storage.
bool DecodeEntry(Slice* input, ParsedEntry* entry);

/// Bytes EncodeEntry would append for this entry.
size_t EncodedEntrySize(const ParsedEntry& entry);

}  // namespace lethe

#endif  // LETHE_FORMAT_ENTRY_H_
