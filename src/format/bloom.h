#ifndef LETHE_FORMAT_BLOOM_H_
#define LETHE_FORMAT_BLOOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/slice.h"

namespace lethe {

/// Standard Bloom filter over sort keys. KiWi maintains one filter per disk
/// page (instead of per file): the same overall false-positive rate is
/// achieved at the same total memory, and full page drops never require
/// filter reconstruction (§4.2.3).
///
/// All probe positions derive from a single 64-bit MurmurHash digest via
/// double hashing, mirroring the single-digest trick the paper attributes to
/// commercial engines (§4.2.4); the CPU-vs-I/O bench counts one hash
/// computation per key probed/added.
class BloomFilterBuilder {
 public:
  /// bits_per_key ~ m/N; 10 gives ~1% FPR.
  explicit BloomFilterBuilder(uint32_t bits_per_key);

  void AddKey(const Slice& key);
  size_t num_keys() const { return hashes_.size(); }

  /// Serializes the filter for the keys added so far and resets the builder.
  std::string Finish();

 private:
  uint32_t bits_per_key_;
  std::vector<uint64_t> hashes_;
};

/// Read-side filter probe.
class BloomFilter {
 public:
  /// `data` must outlive the filter (it aliases the index block).
  explicit BloomFilter(Slice data) : data_(data) {}

  /// Returns false only if the key is definitely absent. Each call costs
  /// exactly one MurmurHash digest.
  bool KeyMayMatch(const Slice& key) const {
    return DigestMayMatch(HashKey(key));
  }

  /// The single 64-bit digest all probe positions derive from. Callers that
  /// probe several per-page filters for the same key (a delete tile holds h
  /// pages) hash once and reuse the digest across DigestMayMatch calls.
  static uint64_t HashKey(const Slice& key);

  /// KeyMayMatch for a precomputed digest; performs no hashing.
  bool DigestMayMatch(uint64_t digest) const;

  /// Number of probe positions (k) used by this filter.
  static uint32_t NumProbes(uint32_t bits_per_key);

 private:
  Slice data_;
};

}  // namespace lethe

#endif  // LETHE_FORMAT_BLOOM_H_
