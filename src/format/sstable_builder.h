#ifndef LETHE_FORMAT_SSTABLE_BUILDER_H_
#define LETHE_FORMAT_SSTABLE_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/env/env.h"
#include "src/format/bloom.h"
#include "src/format/entry.h"
#include "src/format/range_tombstone.h"
#include "src/format/table_options.h"
#include "src/util/status.h"

namespace lethe {

/// Summary the builder hands back to the flush/compaction code, which turns
/// it into a FileMeta (resolving oldest tombstone *seq* to a wall-clock time
/// through the engine's seq→time map; range tombstone times are exact).
struct TableProperties {
  uint32_t num_pages = 0;
  uint32_t num_tiles = 0;
  uint64_t num_entries = 0;
  uint64_t num_point_tombstones = 0;
  uint64_t num_range_tombstones = 0;
  std::string smallest_key;
  std::string largest_key;
  uint64_t min_delete_key = UINT64_MAX;
  uint64_t max_delete_key = 0;
  SequenceNumber smallest_seq = kMaxSequenceNumber;
  SequenceNumber largest_seq = 0;
  /// Smallest seq among point tombstones; kMaxSequenceNumber if none.
  SequenceNumber oldest_point_tombstone_seq = kMaxSequenceNumber;
  /// Smallest insertion time among range tombstones; kNoTombstoneTime-like
  /// UINT64_MAX if none.
  uint64_t oldest_range_tombstone_time = UINT64_MAX;
  /// True when some user key has more than one version in this file (only
  /// possible when a pinned snapshot kept an older version alive through a
  /// flush or compaction). Point lookups on such a file must compare every
  /// candidate page's match by sequence instead of taking the first hit,
  /// because the key weave orders a tile's pages by delete key, not by
  /// version recency.
  bool multi_version = false;
  uint64_t file_size = 0;
};

/// Writes one SSTable in the Key Weaving Storage Layout (§4.2.1):
///
///   [page 0][page 1]...[page P-1]          (fixed page_size_bytes each)
///   [filter section: one Bloom filter block per delete tile]
///   [range tombstone block]
///   [index block: per-page fences + per-page filter lengths]
///   [properties block]
///   [footer]
///
/// Entries must be Add()ed in internal-key order (sort key ascending). The
/// builder buffers h·B entries (one delete tile), then "weaves": it orders
/// the tile's pages by delete key while re-sorting each page's entries by
/// sort key, so that
///   - tiles partition the sort-key space (file-level fence pointers on S),
///   - pages inside a tile partition the delete-key space (delete fences on
///     D enable full page drops),
///   - binary search inside a fetched page still works on S.
/// With pages_per_tile == 1 the output is byte-identical in structure to a
/// classic sort-key-only table.
class SSTableBuilder {
 public:
  SSTableBuilder(const TableOptions& options, WritableFile* file);

  SSTableBuilder(const SSTableBuilder&) = delete;
  SSTableBuilder& operator=(const SSTableBuilder&) = delete;

  /// Adds an entry. Keys must arrive in strictly ascending sort-key order
  /// (duplicate user keys must be consolidated by the caller; within a file
  /// every user key appears once, as the paper's buffer semantics imply).
  void Add(const ParsedEntry& entry);

  void AddRangeTombstone(const RangeTombstone& tombstone);

  /// Number of entries currently buffered + written.
  uint64_t num_entries() const { return props_.num_entries; }

  /// Approximate bytes the file will occupy so far (full pages written plus
  /// the buffered tile).
  uint64_t EstimatedSize() const;

  /// Flushes the trailing partial tile, writes metadata blocks and footer.
  Status Finish(TableProperties* props);

 private:
  struct PendingEntry {
    std::string user_key;
    uint64_t delete_key;
    SequenceNumber seq;
    ValueType type;
    std::string value;
  };

  struct PageMetaRecord {
    std::string min_sort_key;
    std::string max_sort_key;
    uint64_t min_delete_key = UINT64_MAX;
    uint64_t max_delete_key = 0;
    uint32_t num_entries = 0;
    uint32_t num_tombstones = 0;
    std::string bloom;
  };

  Status FlushTile();
  Status WritePage(std::vector<const PendingEntry*>& page_entries);

  TableOptions options_;
  WritableFile* file_;
  Status status_;

  std::vector<PendingEntry> tile_buffer_;
  std::vector<PageMetaRecord> pages_;
  std::vector<uint32_t> tile_page_counts_;
  std::vector<RangeTombstone> range_tombstones_;
  TableProperties props_;
  uint64_t data_bytes_written_ = 0;
};

}  // namespace lethe

#endif  // LETHE_FORMAT_SSTABLE_BUILDER_H_
