#include "src/format/entry.h"

#include "src/util/coding.h"

namespace lethe {

void EncodeEntry(const ParsedEntry& entry, std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(entry.user_key.size()));
  dst->append(entry.user_key.data(), entry.user_key.size());
  PutFixed64(dst, PackSeqAndType(entry.seq, entry.type));
  PutFixed64(dst, entry.delete_key);
  PutVarint32(dst, static_cast<uint32_t>(entry.value.size()));
  dst->append(entry.value.data(), entry.value.size());
}

bool DecodeEntry(Slice* input, ParsedEntry* entry) {
  uint32_t key_len;
  if (!GetVarint32(input, &key_len) || input->size() < key_len) {
    return false;
  }
  entry->user_key = Slice(input->data(), key_len);
  input->remove_prefix(key_len);

  uint64_t packed;
  if (!GetFixed64(input, &packed)) {
    return false;
  }
  entry->seq = UnpackSeq(packed);
  entry->type = UnpackType(packed);
  if (entry->type != ValueType::kValue &&
      entry->type != ValueType::kTombstone) {
    return false;
  }

  if (!GetFixed64(input, &entry->delete_key)) {
    return false;
  }

  uint32_t value_len;
  if (!GetVarint32(input, &value_len) || input->size() < value_len) {
    return false;
  }
  entry->value = Slice(input->data(), value_len);
  input->remove_prefix(value_len);
  return true;
}

size_t EncodedEntrySize(const ParsedEntry& entry) {
  return VarintLength(entry.user_key.size()) + entry.user_key.size() + 8 + 8 +
         VarintLength(entry.value.size()) + entry.value.size();
}

}  // namespace lethe
