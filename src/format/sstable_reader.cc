#include "src/format/sstable_reader.h"

#include <algorithm>
#include <cassert>

#include "src/format/sstable_format.h"
#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace lethe {

Status SSTableReader::Open(const TableOptions& options,
                           std::unique_ptr<RandomAccessFile> file,
                           uint64_t file_size,
                           std::unique_ptr<SSTableReader>* reader,
                           uint64_t file_number, PageCache* page_cache,
                           bool cache_metadata) {
  std::unique_ptr<SSTableReader> table(new SSTableReader(
      options, std::move(file), file_number, page_cache, cache_metadata));
  LETHE_RETURN_IF_ERROR(table->Init(file_size));
  *reader = std::move(table);
  return Status::OK();
}

Status SSTableReader::Init(uint64_t file_size) {
  if (file_size < kFooterSize) {
    return Status::Corruption("table too small for footer");
  }
  char footer_scratch[kFooterSize];
  Slice footer;
  LETHE_RETURN_IF_ERROR(file_->Read(file_size - kFooterSize, kFooterSize,
                                    &footer, footer_scratch));
  if (footer.size() != kFooterSize) {
    return Status::Corruption("short footer read");
  }

  uint64_t magic;
  Slice f = footer;
  GetFixed64(&f, &index_offset_);
  GetFixed32(&f, &index_len_);
  GetFixed64(&f, &filter_offset_);
  GetFixed32(&f, &rt_len_);
  GetFixed64(&f, &props_offset_);
  GetFixed32(&f, &props_len_);
  GetFixed32(&f, &meta_crc_);
  GetFixed64(&f, &magic);
  if (magic != kTableMagic) {
    return Status::Corruption("bad table magic");
  }

  // The metadata blocks are contiguous: [filters][rt][index][props][footer];
  // rt_offset and the filter section length are derived, not stored. Every
  // relation is checked via guarded subtraction working back from the known
  // file size, so a corrupt footer cannot slip through uint64 wraparound
  // into a multi-exabyte read or allocation.
  if (props_offset_ > file_size - kFooterSize ||
      props_len_ != file_size - kFooterSize - props_offset_ ||
      index_len_ > props_offset_ ||
      index_offset_ != props_offset_ - index_len_ ||
      rt_len_ > index_offset_) {
    return Status::Corruption("table metadata geometry mismatch");
  }
  rt_offset_ = index_offset_ - rt_len_;
  if (filter_offset_ > rt_offset_ ||
      rt_offset_ - filter_offset_ > UINT32_MAX) {
    return Status::Corruption("table metadata geometry mismatch");
  }
  filter_len_ = static_cast<uint32_t>(rt_offset_ - filter_offset_);

  if (cache_metadata_) {
    // Lazy mode: metadata loads through the block cache on first touch.
    return Status::OK();
  }
  return LoadIndex(/*include_filters=*/true, &pinned_index_);
}

Status SSTableReader::LoadIndex(bool include_filters,
                                TableIndexHandle* out) const {
  // A checksum-verifying load must cover the whole crc'd region, filters
  // included; a lazy load then keeps only the [rt..props] tail resident
  // (plus per-tile filter digests for its own later block loads). Without
  // checksums, a lazy load skips the filter bytes entirely.
  const bool read_filters = include_filters || options_.verify_checksums;
  const uint64_t region_begin = read_filters ? filter_offset_ : rt_offset_;
  const uint64_t region_len = props_offset_ + props_len_ - region_begin;

  auto index = std::make_shared<TableIndex>();
  std::string scratch;  // verified full region for a non-pinning load
  std::string& region_buffer =
      include_filters ? index->buffer : (read_filters ? scratch : index->buffer);
  region_buffer.resize(region_len);
  Slice region;
  LETHE_RETURN_IF_ERROR(
      file_->Read(region_begin, region_len, &region, region_buffer.data()));
  if (region.size() != region_len) {
    return Status::Corruption("short metadata read");
  }
  if (region.data() != region_buffer.data()) {
    memcpy(region_buffer.data(), region.data(), region_len);
  }
  if (options_.verify_checksums) {
    const uint32_t actual =
        crc32c::Value(region_buffer.data(), region_len);
    if (crc32c::Unmask(meta_crc_) != actual) {
      return Status::Corruption("table metadata checksum mismatch");
    }
  }
  if (!include_filters && read_filters) {
    // Keep only the tail; the filter bytes served their checksum purpose.
    index->buffer.assign(scratch, filter_len_, std::string::npos);
  }
  const uint64_t buffer_begin = include_filters ? region_begin : rt_offset_;

  const char* rt_begin =
      index->buffer.data() + (rt_offset_ - buffer_begin);
  Slice rt_block(rt_begin, rt_len_);
  Slice index_block(rt_begin + rt_len_, index_len_);
  // The props block duplicates builder-side counters already carried by
  // FileMeta; it is retained on disk for tooling but not re-parsed here.

  LETHE_RETURN_IF_ERROR(
      DecodeRangeTombstones(rt_block, &index->range_tombstones));

  uint32_t num_pages, num_tiles, multi_version;
  if (!GetVarint32(&index_block, &num_pages) ||
      !GetVarint32(&index_block, &index->pages_per_tile) ||
      index->pages_per_tile == 0 ||
      !GetVarint32(&index_block, &multi_version) || multi_version > 1 ||
      !GetVarint32(&index_block, &num_tiles)) {
    return Status::Corruption("bad index header");
  }
  index->multi_version = multi_version != 0;
  if (static_cast<uint64_t>(num_pages) * options_.page_size_bytes !=
      filter_offset_) {
    return Status::Corruption("table data geometry mismatch");
  }
  std::vector<uint32_t> tile_page_counts(num_tiles);
  uint32_t total_tile_pages = 0;
  for (uint32_t t = 0; t < num_tiles; t++) {
    if (!GetVarint32(&index_block, &tile_page_counts[t])) {
      return Status::Corruption("bad tile page count");
    }
    total_tile_pages += tile_page_counts[t];
  }
  if (total_tile_pages != num_pages) {
    return Status::Corruption("tile page counts do not cover the file");
  }

  index->pages.reserve(num_pages);
  for (uint32_t i = 0; i < num_pages; i++) {
    PageInfo page;
    Slice min_key, max_key;
    if (!GetLengthPrefixedSlice(&index_block, &min_key) ||
        !GetLengthPrefixedSlice(&index_block, &max_key) ||
        !GetFixed64(&index_block, &page.min_delete_key) ||
        !GetFixed64(&index_block, &page.max_delete_key) ||
        !GetVarint32(&index_block, &page.num_entries) ||
        !GetVarint32(&index_block, &page.num_tombstones) ||
        !GetVarint32(&index_block, &page.filter_len)) {
      return Status::Corruption("bad index record");
    }
    page.min_sort_key = min_key;
    page.max_sort_key = max_key;
    index->pages.push_back(page);
  }

  // Materialize tiles from the explicit per-tile page counts. A tile's
  // filter block is the contiguous run of its pages' filters, so its
  // geometry falls out of the per-page lengths as prefix sums.
  uint32_t first = 0;
  uint64_t tile_filter_offset = filter_offset_;
  for (uint32_t t = 0; t < num_tiles; t++) {
    if (tile_page_counts[t] == 0) {
      continue;
    }
    TileInfo tile;
    tile.first_page = first;
    tile.page_count = tile_page_counts[t];
    first += tile.page_count;
    tile.filter_offset = tile_filter_offset;
    // 64-bit running sum, capped against the section length at every step:
    // corrupt per-page lengths must surface as Corruption, never as a
    // wrapped prefix sum that later drives an out-of-bounds bloom slice.
    uint64_t in_tile_offset = 0;
    for (uint32_t p = tile.first_page;
         p < tile.first_page + tile.page_count; p++) {
      index->pages[p].filter_offset = static_cast<uint32_t>(in_tile_offset);
      in_tile_offset += index->pages[p].filter_len;
      if (in_tile_offset > filter_len_) {
        return Status::Corruption("filter lengths exceed the filter section");
      }
    }
    tile.filter_len = static_cast<uint32_t>(in_tile_offset);
    tile_filter_offset += tile.filter_len;
    tile.min_sort_key = index->pages[tile.first_page].min_sort_key;
    tile.max_sort_key = index->pages[tile.first_page].max_sort_key;
    for (uint32_t p = tile.first_page + 1;
         p < tile.first_page + tile.page_count; p++) {
      if (index->pages[p].min_sort_key.compare(tile.min_sort_key) < 0) {
        tile.min_sort_key = index->pages[p].min_sort_key;
      }
      if (index->pages[p].max_sort_key.compare(tile.max_sort_key) > 0) {
        tile.max_sort_key = index->pages[p].max_sort_key;
      }
    }
    index->tiles.push_back(tile);
  }
  if (tile_filter_offset != rt_offset_) {
    return Status::Corruption("page filters do not tile the filter section");
  }

  if (include_filters) {
    // The filter section sits at the head of the buffer; resolve every
    // page's bloom slice into it.
    for (const TileInfo& tile : index->tiles) {
      const char* block =
          index->buffer.data() + (tile.filter_offset - filter_offset_);
      for (uint32_t p = tile.first_page;
           p < tile.first_page + tile.page_count; p++) {
        PageInfo& page = index->pages[p];
        page.bloom = Slice(block + page.filter_offset, page.filter_len);
      }
    }
  } else if (read_filters) {
    // Lazy, checksum-verifying load: the filter bytes in `scratch` were
    // covered by the region crc above. Derive one digest per tile so a
    // later per-tile filter load can verify exactly the block it fetched
    // against a trusted value — no on-disk per-tile crc needed.
    for (TileInfo& tile : index->tiles) {
      tile.filter_crc = crc32c::Value(
          scratch.data() + (tile.filter_offset - filter_offset_),
          tile.filter_len);
    }
    index->filter_crcs_valid = true;
  }

  *out = std::move(index);
  return Status::OK();
}

const TableIndex* SSTableReader::pinned_index() const {
  assert(pinned_index_ != nullptr &&
         "metadata accessors require a pinned reader "
         "(cache_index_and_filter_blocks = false)");
  return pinned_index_.get();
}

bool SSTableReader::PeekIndex(TableIndexHandle* index) const {
  if (!cache_metadata_) {
    *index = pinned_index_;
    return true;
  }
  return page_cache_ != nullptr &&
         page_cache_->LookupIndex(file_number_, index);
}

Status SSTableReader::GetIndex(TableIndexHandle* index) const {
  if (!cache_metadata_) {
    *index = pinned_index_;
    return Status::OK();
  }
  if (page_cache_ != nullptr && page_cache_->LookupIndex(file_number_, index)) {
    return Status::OK();
  }
  LETHE_RETURN_IF_ERROR(LoadIndex(/*include_filters=*/false, index));
  if (page_cache_ != nullptr) {
    if (page_cache_->stats() != nullptr) {
      page_cache_->stats()->index_block_reads.fetch_add(
          1, std::memory_order_relaxed);
    }
    // A strict-budget rejection leaves the caller serving from its own
    // (unpooled) handle; nothing further to do.
    page_cache_->InsertIndex(file_number_, *index);
  }
  return Status::OK();
}

Status SSTableReader::GetFragmentedRangeTombstones(
    Statistics* stats, FragmentedRtHandle* out) const {
  if (page_cache_ != nullptr &&
      page_cache_->LookupFragmentedRt(file_number_, out)) {
    return Status::OK();
  }
  if (page_cache_ == nullptr) {
    std::lock_guard<std::mutex> lock(frt_mu_);
    if (frt_memo_ != nullptr) {
      *out = frt_memo_;
      return Status::OK();
    }
  }
  TableIndexHandle index;
  LETHE_RETURN_IF_ERROR(GetIndex(&index));
  auto frt = std::make_shared<const FragmentedRangeTombstoneList>(
      index->range_tombstones);
  if (stats != nullptr) {
    stats->rt_fragment_builds.fetch_add(1, std::memory_order_relaxed);
    stats->rt_fragments_total.fetch_add(frt->num_fragments(),
                                        std::memory_order_relaxed);
    stats->RecordRtFragmentCount(frt->num_fragments());
  }
  if (page_cache_ != nullptr) {
    // Strict-budget rejection is fine: the caller serves from its own
    // handle and the next reader rebuilds.
    page_cache_->InsertFragmentedRt(file_number_, frt);
  } else {
    std::lock_guard<std::mutex> lock(frt_mu_);
    if (frt_memo_ == nullptr) {
      frt_memo_ = frt;
    }
  }
  *out = std::move(frt);
  return Status::OK();
}

Status SSTableReader::GetTileFilter(const TableIndex& index,
                                    uint32_t tile_index,
                                    FilterBlockHandle* filter) const {
  if (page_cache_ != nullptr &&
      page_cache_->LookupFilter(file_number_, tile_index, filter)) {
    return Status::OK();
  }
  const TileInfo& tile = index.tiles[tile_index];
  auto block = std::make_shared<FilterBlock>();
  block->data.resize(tile.filter_len);
  Slice raw;
  LETHE_RETURN_IF_ERROR(
      file_->Read(tile.filter_offset, tile.filter_len, &raw,
                  block->data.data()));
  if (raw.size() != tile.filter_len) {
    return Status::Corruption("short filter block read");
  }
  if (raw.data() != block->data.data()) {
    memcpy(block->data.data(), raw.data(), tile.filter_len);
  }
  if (index.filter_crcs_valid && tile.filter_len > 0 &&
      tile.filter_crc !=
          crc32c::Value(block->data.data(), tile.filter_len)) {
    return Status::Corruption("filter block checksum mismatch");
  }
  *filter = std::move(block);
  if (page_cache_ != nullptr) {
    if (page_cache_->stats() != nullptr) {
      page_cache_->stats()->filter_block_reads.fetch_add(
          1, std::memory_order_relaxed);
    }
    page_cache_->InsertFilter(file_number_, tile_index, *filter);
  }
  return Status::OK();
}

Status SSTableReader::IndexForOp(TableIndexHandle* scratch,
                                 const TableIndex** index) const {
  if (!cache_metadata_) {
    // Pinned mode: no refcount traffic on the hot path.
    *index = pinned_index_.get();
    return Status::OK();
  }
  LETHE_RETURN_IF_ERROR(GetIndex(scratch));
  *index = scratch->get();
  return Status::OK();
}

namespace {

/// One MurmurHash digest shared across every per-page filter probed for a
/// key (a delete tile holds up to h candidate pages). Computed lazily on
/// first use; charges hash_computations exactly once.
class LazyDigest {
 public:
  explicit LazyDigest(const Slice& key) : key_(key) {}

  uint64_t get(Statistics* stats) {
    if (!have_) {
      digest_ = BloomFilter::HashKey(key_);
      have_ = true;
      if (stats != nullptr) {
        stats->hash_computations.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return digest_;
  }

 private:
  Slice key_;
  uint64_t digest_ = 0;
  bool have_ = false;
};

}  // namespace

int SSTableReader::FindTile(const TableIndex& index, const Slice& user_key) {
  // Tiles partition the sort-key space; binary search the first tile whose
  // max fence is >= key, then confirm its min fence.
  const auto& tiles = index.tiles;
  int lo = 0, hi = static_cast<int>(tiles.size()) - 1, result = -1;
  while (lo <= hi) {
    int mid = lo + (hi - lo) / 2;
    if (tiles[mid].max_sort_key.compare(user_key) >= 0) {
      result = mid;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  if (result < 0) {
    return -1;
  }
  if (tiles[result].min_sort_key.compare(user_key) > 0) {
    return -1;
  }
  return result;
}

Status SSTableReader::ReadPage(uint32_t page_index, PageHandle* contents,
                               uint32_t generation, bool* from_cache,
                               bool fill_cache) const {
  if (from_cache != nullptr) {
    *from_cache = false;
  }
  if (page_cache_ != nullptr &&
      page_cache_->Lookup(file_number_, page_index, contents, generation)) {
    if (from_cache != nullptr) {
      *from_cache = true;
    }
    return Status::OK();
  }
  const uint64_t page_size = options_.page_size_bytes;
  // Readers are shared across threads; the miss-path scratch buffer is
  // thread-local so repeated reads never hit the allocator.
  static thread_local std::vector<char> scratch;
  if (scratch.size() < page_size) {
    scratch.resize(page_size);
  }
  Slice raw;
  LETHE_RETURN_IF_ERROR(
      file_->Read(PageOffset(page_index), page_size, &raw, scratch.data()));
  auto decoded = std::make_shared<PageContents>();
  LETHE_RETURN_IF_ERROR(
      DecodePage(raw, page_size, options_.verify_checksums, decoded.get()));
  *contents = std::move(decoded);
  if (page_cache_ != nullptr && fill_cache) {
    page_cache_->Insert(file_number_, page_index, *contents, generation);
  }
  return Status::OK();
}

Status SSTableReader::Get(const Slice& user_key, const FileMeta* meta,
                          Statistics* stats, bool* found,
                          TableGetResult* result, bool fill_cache,
                          SequenceNumber max_seq) const {
  *found = false;
  TableIndexHandle index_scratch;
  const TableIndex* index;
  LETHE_RETURN_IF_ERROR(IndexForOp(&index_scratch, &index));
  int tile_index = FindTile(*index, user_key);
  if (tile_index < 0) {
    return Status::OK();
  }
  LazyDigest digest(user_key);
  // A key's versions may straddle a page — or with small tiles even a tile
  // — boundary, so a lookup that exhausts one page's matches keeps walking
  // into the next page (and the next tile, while its min fence still admits
  // the key). In a single-version file the first visible match is the
  // answer and returns immediately — no extra I/O over the pre-snapshot
  // read path. A multi-version file (flagged at build time) gives up that
  // early exit: the weave orders a tile's pages by delete key, so the first
  // match in page order need not be the newest visible version, and every
  // candidate page must be compared by sequence.
  bool best_found = false;
  PageHandle best_page;
  for (int t = tile_index;
       t < static_cast<int>(index->tiles.size()) &&
       index->tiles[t].min_sort_key.compare(user_key) <= 0;
       t++) {
    const TileInfo& tile = index->tiles[t];
    FilterBlockHandle filter;  // cached-metadata mode: fetched on first probe
    for (uint32_t p = tile.first_page; p < tile.first_page + tile.page_count;
         p++) {
      if (meta != nullptr && meta->IsPageDropped(p)) {
        continue;
      }
      const PageInfo& page = index->pages[p];
      if (page.min_sort_key.compare(user_key) > 0 ||
          page.max_sort_key.compare(user_key) < 0) {
        continue;
      }
      if (stats != nullptr) {
        stats->bloom_probes.fetch_add(1, std::memory_order_relaxed);
      }
      if (cache_metadata_ && filter == nullptr) {
        LETHE_RETURN_IF_ERROR(GetTileFilter(*index, t, &filter));
      }
      BloomFilter bloom(BloomOf(page, filter.get()));
      if (!bloom.DigestMayMatch(digest.get(stats))) {
        if (stats != nullptr) {
          stats->bloom_negatives.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      PageHandle contents;
      bool from_cache = false;
      LETHE_RETURN_IF_ERROR(
          ReadPage(p, &contents, meta != nullptr ? meta->page_generation : 0,
                   &from_cache, fill_cache));
      if (stats != nullptr && !from_cache) {
        stats->point_lookup_pages_read.fetch_add(1,
                                                 std::memory_order_relaxed);
      }
      // Binary search within the page; entries are sorted by sort key.
      const auto& entries = contents->entries;
      auto it = std::lower_bound(
          entries.begin(), entries.end(), user_key,
          [](const ParsedEntry& e, const Slice& k) {
            return e.user_key.compare(k) < 0;
          });
      if (it != entries.end() && it->user_key == user_key) {
        for (; it != entries.end() && it->user_key == user_key; ++it) {
          if (it->seq > max_seq) {
            continue;  // invisible to this read's snapshot
          }
          if (!best_found || it->seq > result->seq) {
            best_found = true;
            result->type = it->type;
            result->seq = it->seq;
            result->delete_key = it->delete_key;
            result->value = it->value;
            best_page = contents;  // pins result->value
          }
          if (!index->multi_version) {
            // One version per key: this is it.
            *found = true;
            result->page = std::move(best_page);
            return Status::OK();
          }
        }
        continue;  // more versions may hide in later pages of the weave
      }
      if (stats != nullptr) {
        stats->bloom_false_positives.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (best_found) {
    *found = true;
    result->page = std::move(best_page);
  }
  return Status::OK();
}

bool SSTableReader::KeyMayExist(const Slice& user_key, const FileMeta* meta,
                                Statistics* stats) const {
  TableIndexHandle index_scratch;
  const TableIndex* index;
  if (!IndexForOp(&index_scratch, &index).ok()) {
    return true;  // cannot prove absence without the metadata
  }
  int tile_index = FindTile(*index, user_key);
  if (tile_index < 0) {
    return false;
  }
  const TileInfo& tile = index->tiles[tile_index];
  LazyDigest digest(user_key);
  FilterBlockHandle filter;
  for (uint32_t p = tile.first_page; p < tile.first_page + tile.page_count;
       p++) {
    if (meta != nullptr && meta->IsPageDropped(p)) {
      continue;
    }
    const PageInfo& page = index->pages[p];
    if (page.min_sort_key.compare(user_key) > 0 ||
        page.max_sort_key.compare(user_key) < 0) {
      continue;
    }
    if (stats != nullptr) {
      stats->bloom_probes.fetch_add(1, std::memory_order_relaxed);
    }
    if (cache_metadata_ && filter == nullptr &&
        !GetTileFilter(*index, tile_index, &filter).ok()) {
      return true;  // conservative: a filter we cannot load may match
    }
    BloomFilter bloom(BloomOf(page, filter.get()));
    if (bloom.DigestMayMatch(digest.get(stats))) {
      return true;
    }
    if (stats != nullptr) {
      stats->bloom_negatives.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return false;
}

void SSTableReader::PlanSecondaryRangeDelete(const TableIndex& index,
                                             uint64_t lo, uint64_t hi,
                                             const FileMeta* meta,
                                             SecondaryDeletePlan* plan) const {
  plan->full_drop_pages.clear();
  plan->partial_pages.clear();
  for (uint32_t p = 0; p < index.pages.size(); p++) {
    if (meta != nullptr && meta->IsPageDropped(p)) {
      continue;
    }
    const PageInfo& page = index.pages[p];
    if (page.num_entries == 0) {
      continue;
    }
    const bool overlaps = page.min_delete_key < hi && page.max_delete_key >= lo;
    if (!overlaps) {
      continue;
    }
    const bool fully_covered =
        page.min_delete_key >= lo && page.max_delete_key < hi;
    if (fully_covered) {
      plan->full_drop_pages.push_back(p);
    } else {
      plan->partial_pages.push_back(p);
    }
  }
}

namespace {

/// Iterator over one table, in internal-key order. Within the current
/// delete tile, pages load *lazily*: a page is fetched only once the scan
/// reaches its min-sort-key fence. For uncorrelated delete keys every page
/// of a tile spans roughly the tile's whole key range, so all h pages load
/// up front (the paper's h-factor on short scans); for sort/delete-key
/// correlation ≈ 1 the pages' sort ranges are disjoint and load one at a
/// time — delete tiles then cost the same as the classic layout (paper
/// Fig 6L). The iterator pins the table's index handle for its lifetime,
/// so fence slices stay valid however the block cache churns.
class SSTableIterator final : public InternalIterator {
 public:
  SSTableIterator(const SSTableReader* table, const FileMeta* meta,
                  bool fill_cache)
      : table_(table), meta_(meta), fill_cache_(fill_cache) {
    status_ = table_->GetIndex(&index_);
  }

  bool Valid() const override { return status_.ok() && current_ != nullptr; }

  void SeekToFirst() override {
    if (index_ == nullptr) {
      return;  // index load failed at construction; status_ carries it
    }
    tile_index_ = -1;
    AdvanceTile(nullptr);
  }

  void Seek(const Slice& target) override {
    if (index_ == nullptr) {
      return;
    }
    // First tile whose max fence >= target.
    const auto& tiles = index_->tiles;
    int lo = 0, hi = static_cast<int>(tiles.size()) - 1, result =
        static_cast<int>(tiles.size());
    while (lo <= hi) {
      int mid = lo + (hi - lo) / 2;
      if (tiles[mid].max_sort_key.compare(target) >= 0) {
        result = mid;
        hi = mid - 1;
      } else {
        lo = mid + 1;
      }
    }
    tile_index_ = result - 1;
    AdvanceTile(&target);
    // Per-tile lower bound; every tile after the first candidate holds only
    // keys >= target (tiles partition the sort-key space in order).
    while (Valid() && entry().user_key.compare(target) < 0) {
      Next();
    }
  }

  void Next() override {
    PageCursor* cursor = current_;
    cursor->pos++;
    current_ = nullptr;
    FindNext();
    if (current_ == nullptr && status_.ok()) {
      AdvanceTile(nullptr);
    }
  }

  const ParsedEntry& entry() const override {
    return current_->contents->entries[current_->pos];
  }

  Status status() const override { return status_; }

 private:
  struct PageCursor {
    PageHandle contents;  // shared with the page cache when enabled
    size_t pos = 0;
  };

  /// Moves to the next non-empty tile; `target` positions within it.
  void AdvanceTile(const Slice* target) {
    const auto& tiles = index_->tiles;
    while (status_.ok()) {
      tile_index_++;
      loaded_.clear();
      pending_.clear();
      current_ = nullptr;
      if (tile_index_ >= static_cast<int>(tiles.size())) {
        return;  // exhausted
      }
      const TileInfo& tile = tiles[tile_index_];
      for (uint32_t p = tile.first_page; p < tile.first_page + tile.page_count;
           p++) {
        if (meta_ != nullptr && meta_->IsPageDropped(p)) {
          continue;
        }
        if (target != nullptr &&
            index_->pages[p].max_sort_key.compare(*target) < 0) {
          continue;  // page entirely before the seek target: never load
        }
        pending_.push_back(p);
      }
      // Pages load in fence order.
      std::sort(pending_.begin(), pending_.end(),
                [this](uint32_t a, uint32_t b) {
                  return index_->pages[a].min_sort_key.compare(
                             index_->pages[b].min_sort_key) < 0;
                });
      FindNext();
      if (current_ == nullptr) {
        continue;  // fully dropped/empty tile
      }
      return;
    }
  }

  /// Picks the smallest current entry across loaded pages, loading any
  /// pending page whose fence could precede it.
  void FindNext() {
    while (status_.ok()) {
      PageCursor* best = nullptr;
      for (auto& cursor : loaded_) {
        if (cursor->pos >= cursor->contents->entries.size()) {
          continue;
        }
        if (best == nullptr ||
            CompareInternal(cursor->contents->entries[cursor->pos],
                            best->contents->entries[best->pos]) < 0) {
          best = cursor.get();
        }
      }
      bool must_load =
          !pending_.empty() &&
          (best == nullptr ||
           index_->pages[pending_.front()].min_sort_key.compare(
               best->contents->entries[best->pos].user_key) <= 0);
      if (!must_load) {
        current_ = best;
        return;
      }
      uint32_t page = pending_.front();
      pending_.erase(pending_.begin());
      auto cursor = std::make_unique<PageCursor>();
      Status s = table_->ReadPage(
          page, &cursor->contents,
          meta_ != nullptr ? meta_->page_generation : 0,
          /*from_cache=*/nullptr, fill_cache_);
      if (!s.ok()) {
        status_ = s;
        return;
      }
      loaded_.push_back(std::move(cursor));
    }
  }

  const SSTableReader* table_;
  const FileMeta* meta_;
  bool fill_cache_;
  TableIndexHandle index_;
  Status status_;
  int tile_index_ = -1;
  std::vector<std::unique_ptr<PageCursor>> loaded_;
  std::vector<uint32_t> pending_;  // pages not yet read, fence order
  PageCursor* current_ = nullptr;
};

}  // namespace

std::unique_ptr<InternalIterator> SSTableReader::NewIterator(
    const FileMeta* meta, bool fill_cache) const {
  return std::make_unique<SSTableIterator>(this, meta, fill_cache);
}

}  // namespace lethe
