#include "src/format/sstable_reader.h"

#include <algorithm>
#include <cassert>

#include "src/format/sstable_format.h"
#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace lethe {

Status SSTableReader::Open(const TableOptions& options,
                           std::unique_ptr<RandomAccessFile> file,
                           uint64_t file_size,
                           std::unique_ptr<SSTableReader>* reader,
                           uint64_t file_number, PageCache* page_cache) {
  std::unique_ptr<SSTableReader> table(
      new SSTableReader(options, std::move(file), file_number, page_cache));
  LETHE_RETURN_IF_ERROR(table->Init(file_size));
  *reader = std::move(table);
  return Status::OK();
}

Status SSTableReader::Init(uint64_t file_size) {
  if (file_size < kFooterSize) {
    return Status::Corruption("table too small for footer");
  }
  char footer_scratch[kFooterSize];
  Slice footer;
  LETHE_RETURN_IF_ERROR(file_->Read(file_size - kFooterSize, kFooterSize,
                                    &footer, footer_scratch));
  if (footer.size() != kFooterSize) {
    return Status::Corruption("short footer read");
  }

  uint64_t index_offset, rt_offset, props_offset, magic;
  uint32_t index_len, rt_len, props_len, meta_crc;
  Slice f = footer;
  GetFixed64(&f, &index_offset);
  GetFixed32(&f, &index_len);
  GetFixed64(&f, &rt_offset);
  GetFixed32(&f, &rt_len);
  GetFixed64(&f, &props_offset);
  GetFixed32(&f, &props_len);
  GetFixed32(&f, &meta_crc);
  GetFixed64(&f, &magic);
  if (magic != kTableMagic) {
    return Status::Corruption("bad table magic");
  }

  // All three metadata blocks are contiguous: [rt][index][props].
  const uint64_t meta_begin = rt_offset;
  const uint64_t meta_len =
      static_cast<uint64_t>(rt_len) + index_len + props_len;
  if (meta_begin + meta_len + kFooterSize != file_size) {
    return Status::Corruption("table metadata geometry mismatch");
  }
  index_buffer_.resize(meta_len);
  Slice meta;
  LETHE_RETURN_IF_ERROR(
      file_->Read(meta_begin, meta_len, &meta, index_buffer_.data()));
  if (meta.size() != meta_len) {
    return Status::Corruption("short metadata read");
  }
  if (meta.data() != index_buffer_.data()) {
    memcpy(index_buffer_.data(), meta.data(), meta_len);
  }
  if (options_.verify_checksums) {
    uint32_t actual = crc32c::Value(index_buffer_.data(), meta_len);
    if (crc32c::Unmask(meta_crc) != actual) {
      return Status::Corruption("table metadata checksum mismatch");
    }
  }

  Slice rt_block(index_buffer_.data(), rt_len);
  Slice index_block(index_buffer_.data() + rt_len, index_len);
  // The props block duplicates builder-side counters already carried by
  // FileMeta; it is retained on disk for tooling but not re-parsed here.

  LETHE_RETURN_IF_ERROR(DecodeRangeTombstones(rt_block, &range_tombstones_));

  uint32_t num_pages, num_tiles;
  if (!GetVarint32(&index_block, &num_pages) ||
      !GetVarint32(&index_block, &pages_per_tile_) || pages_per_tile_ == 0 ||
      !GetVarint32(&index_block, &num_tiles)) {
    return Status::Corruption("bad index header");
  }
  std::vector<uint32_t> tile_page_counts(num_tiles);
  uint32_t total_tile_pages = 0;
  for (uint32_t t = 0; t < num_tiles; t++) {
    if (!GetVarint32(&index_block, &tile_page_counts[t])) {
      return Status::Corruption("bad tile page count");
    }
    total_tile_pages += tile_page_counts[t];
  }
  if (total_tile_pages != num_pages) {
    return Status::Corruption("tile page counts do not cover the file");
  }
  pages_.reserve(num_pages);
  for (uint32_t i = 0; i < num_pages; i++) {
    PageInfo page;
    Slice min_key, max_key, bloom;
    if (!GetLengthPrefixedSlice(&index_block, &min_key) ||
        !GetLengthPrefixedSlice(&index_block, &max_key) ||
        !GetFixed64(&index_block, &page.min_delete_key) ||
        !GetFixed64(&index_block, &page.max_delete_key) ||
        !GetVarint32(&index_block, &page.num_entries) ||
        !GetVarint32(&index_block, &page.num_tombstones) ||
        !GetLengthPrefixedSlice(&index_block, &bloom)) {
      return Status::Corruption("bad index record");
    }
    page.min_sort_key = min_key;
    page.max_sort_key = max_key;
    page.bloom = bloom;
    pages_.push_back(page);
  }

  // Materialize tiles from the explicit per-tile page counts.
  uint32_t first = 0;
  for (uint32_t t = 0; t < num_tiles; t++) {
    if (tile_page_counts[t] == 0) {
      continue;
    }
    TileInfo tile;
    tile.first_page = first;
    tile.page_count = tile_page_counts[t];
    first += tile.page_count;
    tile.min_sort_key = pages_[tile.first_page].min_sort_key;
    tile.max_sort_key = pages_[tile.first_page].max_sort_key;
    for (uint32_t p = tile.first_page + 1;
         p < tile.first_page + tile.page_count; p++) {
      if (pages_[p].min_sort_key.compare(tile.min_sort_key) < 0) {
        tile.min_sort_key = pages_[p].min_sort_key;
      }
      if (pages_[p].max_sort_key.compare(tile.max_sort_key) > 0) {
        tile.max_sort_key = pages_[p].max_sort_key;
      }
    }
    tiles_.push_back(tile);
  }
  return Status::OK();
}

namespace {

/// One MurmurHash digest shared across every per-page filter probed for a
/// key (a delete tile holds up to h candidate pages). Computed lazily on
/// first use; charges hash_computations exactly once.
class LazyDigest {
 public:
  explicit LazyDigest(const Slice& key) : key_(key) {}

  uint64_t get(Statistics* stats) {
    if (!have_) {
      digest_ = BloomFilter::HashKey(key_);
      have_ = true;
      if (stats != nullptr) {
        stats->hash_computations.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return digest_;
  }

 private:
  Slice key_;
  uint64_t digest_ = 0;
  bool have_ = false;
};

}  // namespace

int SSTableReader::FindTile(const Slice& user_key) const {
  // Tiles partition the sort-key space; binary search the first tile whose
  // max fence is >= key, then confirm its min fence.
  int lo = 0, hi = static_cast<int>(tiles_.size()) - 1, result = -1;
  while (lo <= hi) {
    int mid = lo + (hi - lo) / 2;
    if (tiles_[mid].max_sort_key.compare(user_key) >= 0) {
      result = mid;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  if (result < 0) {
    return -1;
  }
  if (tiles_[result].min_sort_key.compare(user_key) > 0) {
    return -1;
  }
  return result;
}

Status SSTableReader::ReadPage(uint32_t page_index, PageHandle* contents,
                               uint32_t generation, bool* from_cache,
                               bool fill_cache) const {
  if (from_cache != nullptr) {
    *from_cache = false;
  }
  if (page_cache_ != nullptr &&
      page_cache_->Lookup(file_number_, page_index, contents, generation)) {
    if (from_cache != nullptr) {
      *from_cache = true;
    }
    return Status::OK();
  }
  const uint64_t page_size = options_.page_size_bytes;
  // Readers are shared across threads; the miss-path scratch buffer is
  // thread-local so repeated reads never hit the allocator.
  static thread_local std::vector<char> scratch;
  if (scratch.size() < page_size) {
    scratch.resize(page_size);
  }
  Slice raw;
  LETHE_RETURN_IF_ERROR(
      file_->Read(PageOffset(page_index), page_size, &raw, scratch.data()));
  auto decoded = std::make_shared<PageContents>();
  LETHE_RETURN_IF_ERROR(
      DecodePage(raw, page_size, options_.verify_checksums, decoded.get()));
  *contents = std::move(decoded);
  if (page_cache_ != nullptr && fill_cache) {
    page_cache_->Insert(file_number_, page_index, *contents, generation);
  }
  return Status::OK();
}

Status SSTableReader::Get(const Slice& user_key, const FileMeta* meta,
                          Statistics* stats, bool* found,
                          TableGetResult* result, bool fill_cache) const {
  *found = false;
  int tile_index = FindTile(user_key);
  if (tile_index < 0) {
    return Status::OK();
  }
  const TileInfo& tile = tiles_[tile_index];
  LazyDigest digest(user_key);
  for (uint32_t p = tile.first_page; p < tile.first_page + tile.page_count;
       p++) {
    if (meta != nullptr && meta->IsPageDropped(p)) {
      continue;
    }
    const PageInfo& page = pages_[p];
    if (page.min_sort_key.compare(user_key) > 0 ||
        page.max_sort_key.compare(user_key) < 0) {
      continue;
    }
    if (stats != nullptr) {
      stats->bloom_probes.fetch_add(1, std::memory_order_relaxed);
    }
    BloomFilter filter(page.bloom);
    if (!filter.DigestMayMatch(digest.get(stats))) {
      if (stats != nullptr) {
        stats->bloom_negatives.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    PageHandle contents;
    bool from_cache = false;
    LETHE_RETURN_IF_ERROR(
        ReadPage(p, &contents, meta != nullptr ? meta->page_generation : 0,
                 &from_cache, fill_cache));
    if (stats != nullptr && !from_cache) {
      stats->point_lookup_pages_read.fetch_add(1, std::memory_order_relaxed);
    }
    // Binary search within the page; entries are sorted by sort key.
    const auto& entries = contents->entries;
    auto it = std::lower_bound(
        entries.begin(), entries.end(), user_key,
        [](const ParsedEntry& e, const Slice& k) {
          return e.user_key.compare(k) < 0;
        });
    if (it != entries.end() && it->user_key == user_key) {
      *found = true;
      result->type = it->type;
      result->seq = it->seq;
      result->delete_key = it->delete_key;
      result->value = it->value;
      result->page = std::move(contents);  // pins result->value
      return Status::OK();
    }
    if (stats != nullptr) {
      stats->bloom_false_positives.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

bool SSTableReader::KeyMayExist(const Slice& user_key, const FileMeta* meta,
                                Statistics* stats) const {
  int tile_index = FindTile(user_key);
  if (tile_index < 0) {
    return false;
  }
  const TileInfo& tile = tiles_[tile_index];
  LazyDigest digest(user_key);
  for (uint32_t p = tile.first_page; p < tile.first_page + tile.page_count;
       p++) {
    if (meta != nullptr && meta->IsPageDropped(p)) {
      continue;
    }
    const PageInfo& page = pages_[p];
    if (page.min_sort_key.compare(user_key) > 0 ||
        page.max_sort_key.compare(user_key) < 0) {
      continue;
    }
    if (stats != nullptr) {
      stats->bloom_probes.fetch_add(1, std::memory_order_relaxed);
    }
    BloomFilter filter(page.bloom);
    if (filter.DigestMayMatch(digest.get(stats))) {
      return true;
    }
    if (stats != nullptr) {
      stats->bloom_negatives.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return false;
}

void SSTableReader::PlanSecondaryRangeDelete(uint64_t lo, uint64_t hi,
                                             const FileMeta* meta,
                                             SecondaryDeletePlan* plan) const {
  plan->full_drop_pages.clear();
  plan->partial_pages.clear();
  for (uint32_t p = 0; p < pages_.size(); p++) {
    if (meta != nullptr && meta->IsPageDropped(p)) {
      continue;
    }
    const PageInfo& page = pages_[p];
    if (page.num_entries == 0) {
      continue;
    }
    const bool overlaps = page.min_delete_key < hi && page.max_delete_key >= lo;
    if (!overlaps) {
      continue;
    }
    const bool fully_covered =
        page.min_delete_key >= lo && page.max_delete_key < hi;
    if (fully_covered) {
      plan->full_drop_pages.push_back(p);
    } else {
      plan->partial_pages.push_back(p);
    }
  }
}

namespace {

/// Iterator over one table, in internal-key order. Within the current
/// delete tile, pages load *lazily*: a page is fetched only once the scan
/// reaches its min-sort-key fence. For uncorrelated delete keys every page
/// of a tile spans roughly the tile's whole key range, so all h pages load
/// up front (the paper's h-factor on short scans); for sort/delete-key
/// correlation ≈ 1 the pages' sort ranges are disjoint and load one at a
/// time — delete tiles then cost the same as the classic layout (paper
/// Fig 6L).
class SSTableIterator final : public InternalIterator {
 public:
  SSTableIterator(const SSTableReader* table, const FileMeta* meta,
                  bool fill_cache)
      : table_(table), meta_(meta), fill_cache_(fill_cache) {}

  bool Valid() const override { return status_.ok() && current_ != nullptr; }

  void SeekToFirst() override {
    tile_index_ = -1;
    AdvanceTile(nullptr);
  }

  void Seek(const Slice& target) override {
    // First tile whose max fence >= target.
    const auto& tiles = table_->tiles();
    int lo = 0, hi = static_cast<int>(tiles.size()) - 1, result =
        static_cast<int>(tiles.size());
    while (lo <= hi) {
      int mid = lo + (hi - lo) / 2;
      if (tiles[mid].max_sort_key.compare(target) >= 0) {
        result = mid;
        hi = mid - 1;
      } else {
        lo = mid + 1;
      }
    }
    tile_index_ = result - 1;
    AdvanceTile(&target);
    // Per-tile lower bound; every tile after the first candidate holds only
    // keys >= target (tiles partition the sort-key space in order).
    while (Valid() && entry().user_key.compare(target) < 0) {
      Next();
    }
  }

  void Next() override {
    PageCursor* cursor = current_;
    cursor->pos++;
    current_ = nullptr;
    FindNext();
    if (current_ == nullptr && status_.ok()) {
      AdvanceTile(nullptr);
    }
  }

  const ParsedEntry& entry() const override {
    return current_->contents->entries[current_->pos];
  }

  Status status() const override { return status_; }

 private:
  struct PageCursor {
    PageHandle contents;  // shared with the page cache when enabled
    size_t pos = 0;
  };

  /// Moves to the next non-empty tile; `target` positions within it.
  void AdvanceTile(const Slice* target) {
    const auto& tiles = table_->tiles();
    while (status_.ok()) {
      tile_index_++;
      loaded_.clear();
      pending_.clear();
      current_ = nullptr;
      if (tile_index_ >= static_cast<int>(tiles.size())) {
        return;  // exhausted
      }
      const TileInfo& tile = tiles[tile_index_];
      for (uint32_t p = tile.first_page; p < tile.first_page + tile.page_count;
           p++) {
        if (meta_ != nullptr && meta_->IsPageDropped(p)) {
          continue;
        }
        if (target != nullptr &&
            table_->pages()[p].max_sort_key.compare(*target) < 0) {
          continue;  // page entirely before the seek target: never load
        }
        pending_.push_back(p);
      }
      // Pages load in fence order.
      std::sort(pending_.begin(), pending_.end(),
                [this](uint32_t a, uint32_t b) {
                  return table_->pages()[a].min_sort_key.compare(
                             table_->pages()[b].min_sort_key) < 0;
                });
      FindNext();
      if (current_ == nullptr) {
        continue;  // fully dropped/empty tile
      }
      return;
    }
  }

  /// Picks the smallest current entry across loaded pages, loading any
  /// pending page whose fence could precede it.
  void FindNext() {
    while (status_.ok()) {
      PageCursor* best = nullptr;
      for (auto& cursor : loaded_) {
        if (cursor->pos >= cursor->contents->entries.size()) {
          continue;
        }
        if (best == nullptr ||
            CompareInternal(cursor->contents->entries[cursor->pos],
                            best->contents->entries[best->pos]) < 0) {
          best = cursor.get();
        }
      }
      bool must_load =
          !pending_.empty() &&
          (best == nullptr ||
           table_->pages()[pending_.front()].min_sort_key.compare(
               best->contents->entries[best->pos].user_key) <= 0);
      if (!must_load) {
        current_ = best;
        return;
      }
      uint32_t page = pending_.front();
      pending_.erase(pending_.begin());
      auto cursor = std::make_unique<PageCursor>();
      Status s = table_->ReadPage(
          page, &cursor->contents,
          meta_ != nullptr ? meta_->page_generation : 0,
          /*from_cache=*/nullptr, fill_cache_);
      if (!s.ok()) {
        status_ = s;
        return;
      }
      loaded_.push_back(std::move(cursor));
    }
  }

  const SSTableReader* table_;
  const FileMeta* meta_;
  bool fill_cache_;
  Status status_;
  int tile_index_ = -1;
  std::vector<std::unique_ptr<PageCursor>> loaded_;
  std::vector<uint32_t> pending_;  // pages not yet read, fence order
  PageCursor* current_ = nullptr;
};

}  // namespace

std::unique_ptr<InternalIterator> SSTableReader::NewIterator(
    const FileMeta* meta, bool fill_cache) const {
  return std::make_unique<SSTableIterator>(this, meta, fill_cache);
}

}  // namespace lethe
