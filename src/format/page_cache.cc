#include "src/format/page_cache.h"

#include "src/util/coding.h"

namespace lethe {

namespace {

// fixed64 file_number | fixed32 generation | type byte | fixed32 id.
// The file-number prefix is what EvictFile matches on. Data pages use
// id = page_index under the meta's generation; index/filter blocks are
// never rewritten in place, so they always use generation 0 (id = 0 for
// the index, id = tile_index for filters).
constexpr size_t kKeySize = 17;

enum BlockType : char {
  kDataPage = 0,
  kIndexBlock = 1,
  kFilterBlock = 2,
  kFragmentedRtBlock = 3,
};

void EncodeBlockKey(uint64_t file_number, uint32_t generation, BlockType type,
                    uint32_t id, char* buf) {
  EncodeFixed64(buf, file_number);
  EncodeFixed32(buf + 8, generation);
  buf[12] = type;
  EncodeFixed32(buf + 13, id);
}

/// Cached value for the metadata block types: the shared handle plus the
/// bookkeeping the deleter needs to roll the per-type charge gauge back.
template <typename Handle>
struct BlockValue {
  Handle handle;
  size_t charge = 0;
  std::atomic<uint64_t>* charge_gauge = nullptr;
};

template <typename Handle>
void DeleteBlockValue(const Slice&, void* value) {
  auto* block = static_cast<BlockValue<Handle>*>(value);
  if (block->charge_gauge != nullptr) {
    block->charge_gauge->fetch_sub(block->charge, std::memory_order_relaxed);
  }
  delete block;
}

void DeletePageValue(const Slice&, void* value) {
  delete static_cast<PageHandle*>(value);
}

size_t ChargeOf(const PageContents& contents, size_t raw_bytes) {
  return raw_bytes + contents.entries.size() * sizeof(ParsedEntry) +
         sizeof(PageContents);
}

/// The shared lookup/insert machinery of the two metadata block types;
/// they differ only in key tag, per-type counters, and handle type.
template <typename H>
bool LookupBlock(Cache* cache, uint64_t file_number, BlockType type,
                 uint32_t id, std::atomic<uint64_t>* hits,
                 std::atomic<uint64_t>* misses, H* out) {
  char key[kKeySize];
  EncodeBlockKey(file_number, 0, type, id, key);
  Cache::Handle* handle = cache->Lookup(Slice(key, kKeySize));
  if (handle == nullptr) {
    if (misses != nullptr) {
      misses->fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  *out = static_cast<BlockValue<H>*>(cache->Value(handle))->handle;
  cache->Release(handle);
  if (hits != nullptr) {
    hits->fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

template <typename H>
Cache::Handle* InsertBlock(Cache* cache, uint64_t file_number, BlockType type,
                           uint32_t id, const H& block,
                           std::atomic<uint64_t>* charge_gauge) {
  char key[kKeySize];
  EncodeBlockKey(file_number, 0, type, id, key);
  auto* value = new BlockValue<H>();
  value->handle = block;
  value->charge = block->ApproximateMemoryUsage();
  value->charge_gauge = charge_gauge;
  if (charge_gauge != nullptr) {
    charge_gauge->fetch_add(value->charge, std::memory_order_relaxed);
  }
  return cache->Insert(Slice(key, kKeySize), value, value->charge,
                       &DeleteBlockValue<H>, Cache::Priority::kHigh);
}

}  // namespace

PageCache::PageCache(size_t capacity_bytes, int shard_bits, Statistics* stats,
                     bool strict_capacity)
    : cache_(NewShardedLRUCache(capacity_bytes, shard_bits, strict_capacity)),
      stats_(stats) {}

bool PageCache::Lookup(uint64_t file_number, uint32_t page_index,
                       PageHandle* page, uint32_t generation) {
  char key[kKeySize];
  EncodeBlockKey(file_number, generation, kDataPage, page_index, key);
  Cache::Handle* handle = cache_->Lookup(Slice(key, kKeySize));
  if (handle == nullptr) {
    if (stats_ != nullptr) {
      stats_->page_cache_misses.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  *page = *static_cast<PageHandle*>(cache_->Value(handle));
  cache_->Release(handle);
  if (stats_ != nullptr) {
    stats_->page_cache_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

bool PageCache::Insert(uint64_t file_number, uint32_t page_index,
                       const PageHandle& page, uint32_t generation) {
  char key[kKeySize];
  EncodeBlockKey(file_number, generation, kDataPage, page_index, key);
  const size_t charge = ChargeOf(*page, page->raw_size);
  Cache::Handle* handle =
      cache_->Insert(Slice(key, kKeySize), new PageHandle(page), charge,
                     &DeletePageValue, Cache::Priority::kLow);
  return FinishInsert(handle);
}

bool PageCache::LookupIndex(uint64_t file_number, TableIndexHandle* index) {
  return LookupBlock(cache_.get(), file_number, kIndexBlock, 0,
                     stats_ ? &stats_->index_block_cache_hits : nullptr,
                     stats_ ? &stats_->index_block_cache_misses : nullptr,
                     index);
}

bool PageCache::InsertIndex(uint64_t file_number,
                            const TableIndexHandle& index) {
  return FinishInsert(InsertBlock(
      cache_.get(), file_number, kIndexBlock, 0, index,
      stats_ ? &stats_->index_block_charge_bytes : nullptr));
}

bool PageCache::LookupFragmentedRt(uint64_t file_number,
                                   FragmentedRtHandle* rt) {
  return LookupBlock(cache_.get(), file_number, kFragmentedRtBlock, 0,
                     stats_ ? &stats_->rt_block_cache_hits : nullptr,
                     stats_ ? &stats_->rt_block_cache_misses : nullptr, rt);
}

bool PageCache::InsertFragmentedRt(uint64_t file_number,
                                   const FragmentedRtHandle& rt) {
  return FinishInsert(InsertBlock(
      cache_.get(), file_number, kFragmentedRtBlock, 0, rt,
      stats_ ? &stats_->rt_block_charge_bytes : nullptr));
}

bool PageCache::LookupFilter(uint64_t file_number, uint32_t tile_index,
                             FilterBlockHandle* filter) {
  return LookupBlock(cache_.get(), file_number, kFilterBlock, tile_index,
                     stats_ ? &stats_->filter_block_cache_hits : nullptr,
                     stats_ ? &stats_->filter_block_cache_misses : nullptr,
                     filter);
}

bool PageCache::InsertFilter(uint64_t file_number, uint32_t tile_index,
                             const FilterBlockHandle& filter) {
  return FinishInsert(InsertBlock(
      cache_.get(), file_number, kFilterBlock, tile_index, filter,
      stats_ ? &stats_->filter_block_charge_bytes : nullptr));
}

void PageCache::EvictPage(uint64_t file_number, uint32_t page_index,
                          uint32_t generation) {
  char key[kKeySize];
  EncodeBlockKey(file_number, generation, kDataPage, page_index, key);
  cache_->Erase(Slice(key, kKeySize));
  PublishGauges();
}

void PageCache::EvictFile(uint64_t file_number) {
  char prefix[8];
  EncodeFixed64(prefix, file_number);
  Slice target(prefix, sizeof(prefix));
  cache_->EraseIf(
      [](const Slice& key, void* arg) {
        return key.starts_with(*static_cast<Slice*>(arg));
      },
      &target);
  PublishGauges();
}

bool PageCache::FinishInsert(Cache::Handle* handle) {
  const bool admitted = handle != nullptr;
  if (admitted) {
    cache_->Release(handle);
  } else if (stats_ != nullptr) {
    stats_->block_cache_strict_rejections.fetch_add(
        1, std::memory_order_relaxed);
  }
  PublishGauges();
  return admitted;
}

void PageCache::PublishGauges() {
  if (stats_ == nullptr) {
    return;
  }
  // Eviction counts are monotonic; racing publishers must not let a stale
  // snapshot move the counter backwards (the charge gauge may go down by
  // definition, so a plain store is fine there).
  const uint64_t evictions = cache_->NumEvictions();
  uint64_t current = stats_->page_cache_evictions.load(
      std::memory_order_relaxed);
  while (current < evictions &&
         !stats_->page_cache_evictions.compare_exchange_weak(
             current, evictions, std::memory_order_relaxed)) {
  }
  stats_->page_cache_charge_bytes.store(cache_->TotalCharge(),
                                        std::memory_order_relaxed);
}

}  // namespace lethe
