#include "src/format/page_cache.h"

#include "src/util/coding.h"

namespace lethe {

namespace {

// fixed64 file_number | fixed32 generation | fixed32 page_index. The
// file-number prefix is what EvictFile matches on.
constexpr size_t kKeySize = 16;

void EncodePageKey(uint64_t file_number, uint32_t generation,
                   uint32_t page_index, char* buf) {
  EncodeFixed64(buf, file_number);
  EncodeFixed32(buf + 8, generation);
  EncodeFixed32(buf + 12, page_index);
}

void DeletePageValue(const Slice&, void* value) {
  delete static_cast<PageHandle*>(value);
}

size_t ChargeOf(const PageContents& contents, size_t raw_bytes) {
  return raw_bytes + contents.entries.size() * sizeof(ParsedEntry) +
         sizeof(PageContents);
}

}  // namespace

PageCache::PageCache(size_t capacity_bytes, int shard_bits, Statistics* stats)
    : cache_(NewShardedLRUCache(capacity_bytes, shard_bits)), stats_(stats) {}

bool PageCache::Lookup(uint64_t file_number, uint32_t page_index,
                       PageHandle* page, uint32_t generation) {
  char key[kKeySize];
  EncodePageKey(file_number, generation, page_index, key);
  Cache::Handle* handle = cache_->Lookup(Slice(key, kKeySize));
  if (handle == nullptr) {
    if (stats_ != nullptr) {
      stats_->page_cache_misses.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  *page = *static_cast<PageHandle*>(cache_->Value(handle));
  cache_->Release(handle);
  if (stats_ != nullptr) {
    stats_->page_cache_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void PageCache::Insert(uint64_t file_number, uint32_t page_index,
                       const PageHandle& page, uint32_t generation) {
  char key[kKeySize];
  EncodePageKey(file_number, generation, page_index, key);
  const size_t charge = ChargeOf(*page, page->raw_size);
  Cache::Handle* handle =
      cache_->Insert(Slice(key, kKeySize), new PageHandle(page), charge,
                     &DeletePageValue);
  cache_->Release(handle);
  PublishGauges();
}

void PageCache::EvictPage(uint64_t file_number, uint32_t page_index,
                          uint32_t generation) {
  char key[kKeySize];
  EncodePageKey(file_number, generation, page_index, key);
  cache_->Erase(Slice(key, kKeySize));
  PublishGauges();
}

void PageCache::EvictFile(uint64_t file_number) {
  char prefix[8];
  EncodeFixed64(prefix, file_number);
  Slice target(prefix, sizeof(prefix));
  cache_->EraseIf(
      [](const Slice& key, void* arg) {
        return key.starts_with(*static_cast<Slice*>(arg));
      },
      &target);
  PublishGauges();
}

void PageCache::PublishGauges() {
  if (stats_ == nullptr) {
    return;
  }
  // Eviction counts are monotonic; racing publishers must not let a stale
  // snapshot move the counter backwards (the charge gauge may go down by
  // definition, so a plain store is fine there).
  const uint64_t evictions = cache_->NumEvictions();
  uint64_t current = stats_->page_cache_evictions.load(
      std::memory_order_relaxed);
  while (current < evictions &&
         !stats_->page_cache_evictions.compare_exchange_weak(
             current, evictions, std::memory_order_relaxed)) {
  }
  stats_->page_cache_charge_bytes.store(cache_->TotalCharge(),
                                        std::memory_order_relaxed);
}

}  // namespace lethe
