#ifndef LETHE_WORKLOAD_GENERATOR_H_
#define LETHE_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/random.h"
#include "src/workload/zipfian.h"

namespace lethe {
namespace workload {

/// One operation of a synthetic trace.
enum class OpType {
  kInsert,
  kUpdate,
  kPointLookup,       // on an existing key
  kZeroResultLookup,  // on a key never inserted
  kPointDelete,       // on an existing key
  kRangeDelete,       // on the sort key
  kShortRangeScan,
  kSecondaryRangeDelete,
};

struct Op {
  OpType type = OpType::kInsert;
  std::string key;        // sort key (begin key for ranges)
  std::string end_key;    // range delete / scan upper bound
  uint64_t delete_key = 0;
  uint64_t delete_key_end = 0;  // secondary range deletes
  std::string value;
};

/// Key-pick distribution for updates/lookups/deletes.
enum class Distribution {
  kUniform,
  kZipfian,
};

/// How an entry's secondary delete key relates to its sort key — the knob
/// behind Fig 6L. kTimestamp assigns the (logical) insertion time, which is
/// uncorrelated with a random sort key; kEqualsSortKey yields correlation 1,
/// under which delete tiles degenerate to the classic layout.
enum class DeleteKeyMode {
  kTimestamp,
  kEqualsSortKey,
  kUniformRandom,
};

/// Paper §5 "Workload": a YCSB-A variant — 50% general updates, 50% point
/// lookups — with deletes mixed in at delete_fraction of the ingestion, all
/// issued on previously inserted keys, uniformly spread through the run.
struct Spec {
  uint64_t num_user_ops = 100000;

  // Fractions of user operations (should sum to <= 1; the remainder becomes
  // inserts of fresh keys).
  double update_fraction = 0.25;
  double point_lookup_fraction = 0.25;
  double zero_lookup_fraction = 0.0;
  double point_delete_fraction = 0.0;
  double range_delete_fraction = 0.0;
  double short_scan_fraction = 0.0;
  double fresh_insert_fraction = 0.5;

  double range_delete_selectivity = 5e-4;  // fraction of key domain
  uint64_t short_scan_keys = 16;

  uint32_t value_size = 120;
  Distribution distribution = Distribution::kUniform;
  double zipfian_theta = 0.99;
  DeleteKeyMode delete_key_mode = DeleteKeyMode::kTimestamp;

  uint64_t seed = 42;
};

/// Fixed-width, lexicographically ordered sort-key encoding of a uint64.
std::string EncodeKey(uint64_t k);
uint64_t DecodeKey(const std::string& key);

/// Streaming generator: call Next() num_user_ops times. Keys are drawn from
/// the set inserted so far (deletes and lookups target existing keys;
/// deleted keys leave the live set). Deterministic for a given spec.
class Generator {
 public:
  explicit Generator(const Spec& spec);

  /// Produces the next operation. Returns false when the budget is spent.
  bool Next(Op* op);

  uint64_t ops_emitted() const { return ops_emitted_; }
  uint64_t live_keys() const { return live_end_ - num_deleted_; }

 private:
  uint64_t PickExistingKey();
  std::string MakeValue(uint64_t key);
  uint64_t NextDeleteKeyFor(uint64_t key_index);

  Spec spec_;
  Random rnd_;
  ZipfianGenerator zipf_;
  uint64_t ops_emitted_ = 0;
  uint64_t next_fresh_key_ = 0;  // keys [0, next_fresh_key_) inserted
  uint64_t live_end_ = 0;
  uint64_t num_deleted_ = 0;
  uint64_t logical_time_ = 0;  // drives kTimestamp delete keys
  std::string value_template_;
};

}  // namespace workload
}  // namespace lethe

#endif  // LETHE_WORKLOAD_GENERATOR_H_
