#include "src/workload/trace.h"

namespace lethe {
namespace workload {

Status Runner::Run(Generator* gen, RunnerStats* stats) {
  Op op;
  while (gen->Next(&op)) {
    LETHE_RETURN_IF_ERROR(Apply(op, stats));
  }
  return Status::OK();
}

Status Runner::Apply(const Op& op, RunnerStats* stats) {
  stats->ops++;
  const uint64_t start_us =
      options_.measure_latency ? wall_.NowMicros() : 0;
  bool is_read = false;
  Status s;

  switch (op.type) {
    case OpType::kInsert:
      stats->inserts++;
      s = db_->Put(WriteOptions(), op.key, op.delete_key, op.value);
      break;
    case OpType::kUpdate:
      stats->updates++;
      s = db_->Put(WriteOptions(), op.key, op.delete_key, op.value);
      break;
    case OpType::kPointLookup:
    case OpType::kZeroResultLookup: {
      is_read = true;
      std::string value;
      s = db_->Get(ReadOptions(), op.key, &value);
      if (s.ok()) {
        stats->lookups_found++;
      } else if (s.IsNotFound()) {
        stats->lookups_missed++;
        s = Status::OK();
      }
      break;
    }
    case OpType::kPointDelete:
      stats->point_deletes++;
      s = db_->Delete(WriteOptions(), op.key);
      break;
    case OpType::kRangeDelete:
      stats->range_deletes++;
      s = db_->RangeDelete(WriteOptions(), op.key, op.end_key);
      break;
    case OpType::kShortRangeScan: {
      is_read = true;
      stats->scans++;
      auto it = db_->NewIterator(ReadOptions());
      uint64_t remaining = op.delete_key;  // scan length rides this field
      for (it->Seek(op.key); it->Valid() && remaining > 0; it->Next()) {
        stats->scan_entries++;
        remaining--;
      }
      s = it->status();
      break;
    }
    case OpType::kSecondaryRangeDelete:
      s = db_->SecondaryRangeDelete(WriteOptions(), op.delete_key,
                                    op.delete_key_end);
      break;
  }
  if (!s.ok()) {
    return s;
  }

  if (options_.measure_latency) {
    uint64_t elapsed = wall_.NowMicros() - start_us;
    if (is_read) {
      stats->read_latency_us.Add(elapsed);
    } else {
      stats->write_latency_us.Add(elapsed);
    }
  }
  if (options_.clock != nullptr && options_.micros_per_op > 0) {
    options_.clock->AdvanceMicros(options_.micros_per_op);
  }
  return Status::OK();
}

}  // namespace workload
}  // namespace lethe
