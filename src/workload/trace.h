#ifndef LETHE_WORKLOAD_TRACE_H_
#define LETHE_WORKLOAD_TRACE_H_

#include <cstdint>

#include "src/core/db.h"
#include "src/util/clock.h"
#include "src/util/histogram.h"
#include "src/workload/generator.h"

namespace lethe {
namespace workload {

/// Execution knobs shared by the benches. When `clock` is set, the runner
/// advances it by micros_per_op after every user operation — this is how the
/// paper's ingestion rate I (entries/sec) maps onto the logical time that
/// drives FADE's TTLs.
struct RunnerOptions {
  LogicalClock* clock = nullptr;
  uint64_t micros_per_op = 0;
  bool measure_latency = false;  // wall-clock per-op latency histograms
};

struct RunnerStats {
  uint64_t ops = 0;
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t lookups_found = 0;
  uint64_t lookups_missed = 0;
  uint64_t point_deletes = 0;
  uint64_t range_deletes = 0;
  uint64_t scans = 0;
  uint64_t scan_entries = 0;
  Histogram write_latency_us;
  Histogram read_latency_us;
};

/// Applies generated operations to a DB, collecting counters and optional
/// latency histograms.
class Runner {
 public:
  Runner(DB* db, const RunnerOptions& options)
      : db_(db), options_(options) {}

  /// Drains `gen` to exhaustion.
  Status Run(Generator* gen, RunnerStats* stats);

  /// Executes one operation.
  Status Apply(const Op& op, RunnerStats* stats);

 private:
  DB* db_;
  RunnerOptions options_;
  SystemClock wall_;
};

}  // namespace workload
}  // namespace lethe

#endif  // LETHE_WORKLOAD_TRACE_H_
