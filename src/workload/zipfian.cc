#include "src/workload/zipfian.h"

#include <cmath>

namespace lethe {

double ZipfianGenerator::ZetaIncremental(double current, uint64_t from,
                                         uint64_t to, double theta) {
  for (uint64_t i = from; i < to; i++) {
    current += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return current;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n == 0 ? 1 : n), theta_(theta), rnd_(seed) {
  zeta_n_ = ZetaIncremental(0.0, 0, n_, theta_);
  zeta2_ = ZetaIncremental(0.0, 0, 2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zeta_n_);
}

void ZipfianGenerator::ExpandTo(uint64_t n) {
  if (n <= n_) {
    return;
  }
  zeta_n_ = ZetaIncremental(zeta_n_, n_, n, theta_);
  n_ = n;
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zeta_n_);
}

uint64_t ZipfianGenerator::Next() {
  double u = rnd_.NextDouble();
  double uz = u * zeta_n_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  double v = static_cast<double>(n_) *
             std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t result = static_cast<uint64_t>(v);
  return result >= n_ ? n_ - 1 : result;
}

}  // namespace lethe
