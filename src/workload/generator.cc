#include "src/workload/generator.h"

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "src/util/hash.h"

namespace lethe {
namespace workload {

namespace {

/// Invertible 64-bit mix (splitmix64 finalizer): maps the dense insert
/// counter to a pseudo-random position in the key domain, so entries are
/// "uniformly and randomly distributed across the key domain and inserted in
/// random order" (paper §5 default setup).
uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::string EncodeKey(uint64_t k) {
  char buf[17];
  snprintf(buf, sizeof(buf), "%016" PRIx64, k);
  return std::string(buf, 16);
}

uint64_t DecodeKey(const std::string& key) {
  return strtoull(key.c_str(), nullptr, 16);
}

Generator::Generator(const Spec& spec)
    : spec_(spec),
      rnd_(spec.seed),
      zipf_(1024, spec.zipfian_theta, spec.seed ^ 0x5a5a5a5a) {
  value_template_.assign(spec_.value_size, 'v');
}

uint64_t Generator::PickExistingKey() {
  if (next_fresh_key_ == 0) {
    return 0;
  }
  if (spec_.distribution == Distribution::kZipfian) {
    zipf_.ExpandTo(next_fresh_key_);
    return zipf_.Next();
  }
  return rnd_.Uniform(next_fresh_key_);
}

std::string Generator::MakeValue(uint64_t key) {
  std::string value = value_template_;
  char tag[17];
  snprintf(tag, sizeof(tag), "%016" PRIx64, key);
  for (size_t i = 0; i < 16 && i < value.size(); i++) {
    value[i] = tag[i];
  }
  return value;
}

uint64_t Generator::NextDeleteKeyFor(uint64_t key_index) {
  switch (spec_.delete_key_mode) {
    case DeleteKeyMode::kTimestamp:
      return ++logical_time_;
    case DeleteKeyMode::kEqualsSortKey:
      return Mix64(key_index);
    case DeleteKeyMode::kUniformRandom:
      return rnd_.Next();
  }
  return 0;
}

bool Generator::Next(Op* op) {
  if (ops_emitted_ >= spec_.num_user_ops) {
    return false;
  }
  ops_emitted_++;

  double roll = rnd_.NextDouble();
  double acc = spec_.update_fraction;

  if (next_fresh_key_ == 0) {
    roll = 2.0;  // force the very first op to be an insert
  }

  if (roll < acc) {
    uint64_t index = PickExistingKey();
    op->type = OpType::kUpdate;
    op->key = EncodeKey(Mix64(index));
    op->delete_key = NextDeleteKeyFor(index);
    op->value = MakeValue(Mix64(index));
    return true;
  }
  acc += spec_.point_lookup_fraction;
  if (roll < acc) {
    uint64_t index = PickExistingKey();
    op->type = OpType::kPointLookup;
    op->key = EncodeKey(Mix64(index));
    return true;
  }
  acc += spec_.zero_lookup_fraction;
  if (roll < acc) {
    op->type = OpType::kZeroResultLookup;
    op->key = EncodeKey(rnd_.Next());  // collision chance ~ n / 2^64
    return true;
  }
  acc += spec_.point_delete_fraction;
  if (roll < acc) {
    uint64_t index = PickExistingKey();
    op->type = OpType::kPointDelete;
    op->key = EncodeKey(Mix64(index));
    num_deleted_++;  // approximate: double deletes are possible and benign
    return true;
  }
  acc += spec_.range_delete_fraction;
  if (roll < acc) {
    uint64_t start = Mix64(PickExistingKey());
    double span = spec_.range_delete_selectivity * 18446744073709551615.0;
    uint64_t end = start + static_cast<uint64_t>(span);
    if (end <= start) {
      end = start + 1;
    }
    op->type = OpType::kRangeDelete;
    op->key = EncodeKey(start);
    op->end_key = EncodeKey(end);
    return true;
  }
  acc += spec_.short_scan_fraction;
  if (roll < acc) {
    uint64_t start = Mix64(PickExistingKey());
    op->type = OpType::kShortRangeScan;
    op->key = EncodeKey(start);
    op->delete_key = spec_.short_scan_keys;  // reuse field as scan length
    return true;
  }

  // Fresh insert.
  uint64_t index = next_fresh_key_++;
  live_end_ = next_fresh_key_;
  op->type = OpType::kInsert;
  op->key = EncodeKey(Mix64(index));
  op->delete_key = NextDeleteKeyFor(index);
  op->value = MakeValue(Mix64(index));
  return true;
}

}  // namespace workload
}  // namespace lethe
