#ifndef LETHE_WORKLOAD_ZIPFIAN_H_
#define LETHE_WORKLOAD_ZIPFIAN_H_

#include <cstdint>

#include "src/util/random.h"

namespace lethe {

/// Zipfian item-index generator over [0, n) with exponent theta, using the
/// Gray et al. rejection-free method popularized by YCSB. Deterministic for
/// a given (n, theta, seed).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

  /// Grows the item space (e.g., as inserts extend the key domain). Cheap
  /// amortized: zeta is recomputed incrementally.
  void ExpandTo(uint64_t n);

 private:
  static double ZetaIncremental(double current, uint64_t from, uint64_t to,
                                double theta);

  uint64_t n_;
  double theta_;
  double zeta_n_;
  double zeta2_;
  double alpha_;
  double eta_;
  Random rnd_;
};

}  // namespace lethe

#endif  // LETHE_WORKLOAD_ZIPFIAN_H_
